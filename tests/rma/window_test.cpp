#include "rma/window.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <vector>

namespace cmpi::rma {
namespace {

runtime::UniverseConfig small_config(unsigned nodes, unsigned per_node) {
  runtime::UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  return cfg;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 17 + i * 3) & 0xFF);
  }
  return out;
}

TEST(Window, SegmentsAreContiguousPerRank) {
  runtime::Universe universe(small_config(2, 2));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "layout", 4096);
    for (int r = 0; r + 1 < ctx.nranks(); ++r) {
      EXPECT_EQ(win.segment_offset(r) + win.win_size(),
                win.segment_offset(r + 1));
    }
    win.free();
  });
}

TEST(Window, WinSizeRoundsToCacheline) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "round", 100);
    EXPECT_EQ(win.win_size(), 128u);
    win.free();
  });
}

TEST(Window, PutWithPscwDeliversData) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "pscw_put", 4096);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    const auto data = pattern(1024, 5);
    if (ctx.rank() == 0) {
      win.start(target);
      win.put(1, 128, data);
      win.complete(target);
    } else {
      win.post(origin);
      win.wait(origin);
      std::vector<std::byte> got(1024);
      win.read_local(128, got);
      EXPECT_EQ(got, data);
    }
    win.free();
  });
}

TEST(Window, GetWithPscwFetchesTargetData) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "pscw_get", 2048);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    const auto data = pattern(512, 9);
    if (ctx.rank() == 1) {
      win.write_local(64, data);  // target fills its segment
      win.post(origin);
      win.wait(origin);
    } else {
      win.start(target);
      std::vector<std::byte> got(512);
      win.get(1, 64, got);
      EXPECT_EQ(got, data);
      win.complete(target);
    }
    win.free();
  });
}

TEST(Window, PscwEpochsRepeat) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "pscw_repeat", 256);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    for (int epoch = 0; epoch < 10; ++epoch) {
      const auto data = pattern(64, epoch);
      if (ctx.rank() == 0) {
        win.start(target);
        win.put(1, 0, data);
        win.complete(target);
      } else {
        win.post(origin);
        win.wait(origin);
        std::vector<std::byte> got(64);
        win.read_local(0, got);
        EXPECT_EQ(got, data) << "epoch " << epoch;
      }
    }
    win.free();
  });
}

TEST(Window, PscwWaitSynchronizesVirtualTime) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "pscw_time", 256);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    if (ctx.rank() == 0) {
      ctx.clock().advance(5e6);  // origin is slow before completing
      win.start(target);
      win.complete(target);
    } else {
      win.post(origin);
      win.wait(origin);
      EXPECT_GE(ctx.clock().now(), 5e6);
    }
    win.free();
  });
}

TEST(Window, MultipleOriginsOneTarget) {
  runtime::Universe universe(small_config(3, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "fanin", 4096);
    const std::array<int, 2> origins{0, 1};
    const std::array<int, 1> target{2};
    if (ctx.rank() == 2) {
      win.post(origins);
      win.wait(origins);
      for (int o = 0; o < 2; ++o) {
        std::vector<std::byte> got(128);
        win.read_local(static_cast<std::uint64_t>(o) * 1024, got);
        EXPECT_EQ(got, pattern(128, o + 1));
      }
    } else {
      win.start(target);
      win.put(2, static_cast<std::uint64_t>(ctx.rank()) * 1024,
              pattern(128, ctx.rank() + 1));
      win.complete(target);
    }
    win.free();
  });
}

TEST(Window, FenceSeparatesEpochs) {
  runtime::Universe universe(small_config(2, 2));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "fence", 1024);
    const int n = ctx.nranks();
    const int right = (ctx.rank() + 1) % n;
    // Epoch 1: everyone puts its rank id into its right neighbor.
    win.fence();
    const std::uint64_t value = static_cast<std::uint64_t>(ctx.rank() + 100);
    win.put(right, 0,
            {reinterpret_cast<const std::byte*>(&value), sizeof value});
    win.fence();
    // Epoch 2: read own segment.
    std::uint64_t got = 0;
    win.read_local(0, {reinterpret_cast<std::byte*>(&got), sizeof got});
    const int left = (ctx.rank() + n - 1) % n;
    EXPECT_EQ(got, static_cast<std::uint64_t>(left + 100));
    win.fence();
    win.free();
  });
}

TEST(Window, LockUnlockExcludesConcurrentAccumulate) {
  // All ranks accumulate into rank 0's counter under the window lock; the
  // total must not lose updates.
  runtime::Universe universe(small_config(2, 2));
  constexpr int kIters = 25;
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "lockacc", 64);
    if (ctx.rank() == 0) {
      const double zero = 0.0;
      win.write_local(0, std::as_bytes(std::span(&zero, 1)));
    }
    win.fence();
    const double one = 1.0;
    for (int i = 0; i < kIters; ++i) {
      win.lock(0);
      win.accumulate(0, 0, std::span(&one, 1), AccumulateOp::kSum);
      win.unlock(0);
    }
    win.fence();
    if (ctx.rank() == 0) {
      double total = 0;
      std::vector<std::byte> raw(sizeof total);
      win.get(0, 0, raw);
      std::memcpy(&total, raw.data(), sizeof total);
      EXPECT_DOUBLE_EQ(total, ctx.nranks() * kIters);
    }
    win.free();
  });
}

TEST(Window, AccumulateOps) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "accops", 256);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    if (ctx.rank() == 1) {
      const std::array<double, 3> init{10.0, 10.0, 10.0};
      win.write_local(0, std::as_bytes(std::span(init)));
      win.post(origin);
      win.wait(origin);
      std::array<double, 3> got{};
      std::vector<std::byte> raw(sizeof got);
      win.read_local(0, raw);
      std::memcpy(got.data(), raw.data(), sizeof got);
      EXPECT_DOUBLE_EQ(got[0], 13.0);   // sum
      EXPECT_DOUBLE_EQ(got[1], 10.0);   // min(10, 13)
      EXPECT_DOUBLE_EQ(got[2], 13.0);   // replace
    } else {
      win.start(target);
      const double v = 3.0;
      win.accumulate(1, 0, std::span(&v, 1), AccumulateOp::kSum);
      const double m = 13.0;
      win.accumulate(1, 8, std::span(&m, 1), AccumulateOp::kMin);
      win.accumulate(1, 16, std::span(&m, 1), AccumulateOp::kReplace);
      win.complete(target);
    }
    win.free();
  });
}

TEST(Window, TwoWindowsCoexist) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Window a = Window::create(ctx, "multi_a", 256);
    Window b = Window::create(ctx, "multi_b", 256);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    if (ctx.rank() == 0) {
      a.start(target);
      b.start(target);
      a.put(1, 0, pattern(64, 1));
      b.put(1, 0, pattern(64, 2));
      a.complete(target);
      b.complete(target);
    } else {
      a.post(origin);
      b.post(origin);
      a.wait(origin);
      b.wait(origin);
      std::vector<std::byte> got(64);
      a.read_local(0, got);
      EXPECT_EQ(got, pattern(64, 1));
      b.read_local(0, got);
      EXPECT_EQ(got, pattern(64, 2));
    }
    b.free();
    a.free();
  });
}

TEST(Window, FreeReleasesArenaSpace) {
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    const std::uint64_t before =
        ctx.rank() == 0 ? ctx.arena().free_bytes() : 0;
    ctx.barrier();
    Window win = Window::create(ctx, "tofree", 4096);
    win.free();
    ctx.barrier();
    if (ctx.rank() == 0) {
      EXPECT_EQ(ctx.arena().free_bytes(), before);
    }
  });
}

TEST(Window, SmallPutLatencyIsMicrosecondScale) {
  // Fig. 6 sanity: one-sided small-message latency with PSCW sync should
  // land in the ~3-30 us band (paper: ~12 us).
  runtime::Universe universe(small_config(2, 1));
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "lat", 4096);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    constexpr int kIters = 50;
    win.fence();
    const double start = ctx.clock().now();
    for (int i = 0; i < kIters; ++i) {
      if (ctx.rank() == 0) {
        win.start(target);
        win.put(1, 0, pattern(8, i));
        win.complete(target);
      } else {
        win.post(origin);
        win.wait(origin);
      }
    }
    win.fence();
    const double per_op_us = (ctx.clock().now() - start) / kIters / 1000.0;
    EXPECT_GT(per_op_us, 1.0);
    EXPECT_LT(per_op_us, 40.0);
    win.free();
  });
}

}  // namespace
}  // namespace cmpi::rma
