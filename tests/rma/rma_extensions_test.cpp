// Extended one-sided operations: fetch_and_op, get_accumulate,
// lock_all/unlock_all — the passive-target surface RMA applications lean
// on, built (like everything else) without device atomics.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "rma/window.hpp"

namespace cmpi::rma {
namespace {

runtime::UniverseConfig config_for(unsigned nodes, unsigned per_node) {
  runtime::UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  return cfg;
}

TEST(RmaExtensions, FetchAndOpSumUnderLockIsAtomic) {
  // Every rank increments rank 0's counter 30 times with fetch_and_op
  // under the window lock; the fetched values must form a permutation of
  // 0..N*30-1 (no lost updates) and the final count must be exact.
  runtime::Universe universe(config_for(2, 2));
  constexpr int kIncrements = 30;
  universe.run([&](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "fao", 64);
    win.fence();
    std::vector<std::uint64_t> fetched;
    for (int i = 0; i < kIncrements; ++i) {
      win.lock(0);
      fetched.push_back(
          win.fetch_and_op_u64(0, 0, 1, AccumulateOp::kSum));
      win.unlock(0);
    }
    // Fetched values are strictly increasing per rank (monotone counter).
    for (std::size_t i = 1; i < fetched.size(); ++i) {
      EXPECT_GT(fetched[i], fetched[i - 1]);
    }
    win.fence();
    if (ctx.rank() == 0) {
      std::uint64_t total = 0;
      win.read_local(0, std::as_writable_bytes(std::span(&total, 1)));
      EXPECT_EQ(total, static_cast<std::uint64_t>(ctx.nranks()) *
                           kIncrements);
    }
    win.free();
  });
}

TEST(RmaExtensions, FetchAndOpReplaceReturnsOldValue) {
  runtime::Universe universe(config_for(2, 1));
  universe.run([](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "faor", 64);
    win.fence();
    if (ctx.rank() == 0) {
      win.lock(1);
      EXPECT_EQ(win.fetch_and_op_u64(1, 0, 111, AccumulateOp::kReplace), 0u);
      EXPECT_EQ(win.fetch_and_op_u64(1, 0, 222, AccumulateOp::kReplace),
                111u);
      win.unlock(1);
    }
    win.fence();
    if (ctx.rank() == 1) {
      std::uint64_t value = 0;
      win.read_local(0, std::as_writable_bytes(std::span(&value, 1)));
      EXPECT_EQ(value, 222u);
    }
    win.free();
  });
}

TEST(RmaExtensions, GetAccumulateFetchesThenCombines) {
  runtime::Universe universe(config_for(2, 1));
  universe.run([](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "getacc", 256);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    if (ctx.rank() == 1) {
      const std::array<double, 2> init{10.0, 20.0};
      win.write_local(0, std::as_bytes(std::span(init)));
      win.post(origin);
      win.wait(origin);
      std::array<double, 2> now{};
      std::vector<std::byte> raw(sizeof now);
      win.read_local(0, raw);
      std::memcpy(now.data(), raw.data(), sizeof now);
      EXPECT_DOUBLE_EQ(now[0], 11.0);
      EXPECT_DOUBLE_EQ(now[1], 22.0);
    } else {
      win.start(target);
      const std::array<double, 2> add{1.0, 2.0};
      std::array<double, 2> before{};
      win.get_accumulate(1, 0, add, before, AccumulateOp::kSum);
      EXPECT_DOUBLE_EQ(before[0], 10.0);  // pre-op values fetched
      EXPECT_DOUBLE_EQ(before[1], 20.0);
      win.complete(target);
    }
    win.free();
  });
}

TEST(RmaExtensions, LockAllProtectsScatterUpdates) {
  // Each rank updates a slot in EVERY rank's segment under lock_all; all
  // slots must hold exactly one writer's value afterwards.
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    const int n = ctx.nranks();
    Window win = Window::create(
        ctx, "lockall", static_cast<std::size_t>(n) * 8);
    win.fence();
    for (int round = 0; round < 5; ++round) {
      win.lock_all();
      for (int target = 0; target < n; ++target) {
        const std::uint64_t value =
            static_cast<std::uint64_t>(ctx.rank() + 1);
        win.put(target, static_cast<std::uint64_t>(ctx.rank()) * 8,
                std::as_bytes(std::span(&value, 1)));
      }
      win.unlock_all();
    }
    win.fence();
    // Slot r of my segment must hold r+1.
    for (int r = 0; r < n; ++r) {
      std::uint64_t got = 0;
      win.read_local(static_cast<std::uint64_t>(r) * 8,
                     std::as_writable_bytes(std::span(&got, 1)));
      EXPECT_EQ(got, static_cast<std::uint64_t>(r + 1));
    }
    win.free();
  });
}

TEST(RmaExtensions, FetchAndOpChainAcrossRanks) {
  // A distributed ticket dispenser: ranks draw tickets with fetch_and_op
  // and the union of drawn tickets must be exactly 0..total-1.
  runtime::Universe universe(config_for(2, 2));
  constexpr int kPerRank = 10;
  universe.run([](runtime::RankCtx& ctx) {
    Window win = Window::create(ctx, "tickets", 64);
    win.fence();
    std::vector<std::uint64_t> mine;
    for (int i = 0; i < kPerRank; ++i) {
      win.lock(0);
      mine.push_back(win.fetch_and_op_u64(0, 0, 1, AccumulateOp::kSum));
      win.unlock(0);
    }
    // Gather everyone's tickets on rank 0 via the window itself.
    win.fence();
    win.lock(0);
    for (int i = 0; i < kPerRank; ++i) {
      // Mark ticket as seen in a bitmap region (one byte per ticket).
      const std::byte one{1};
      win.put(0, 8 + mine[static_cast<std::size_t>(i)],
              std::span(&one, 1));
    }
    win.unlock(0);
    win.fence();
    if (ctx.rank() == 0) {
      const std::uint64_t total =
          static_cast<std::uint64_t>(ctx.nranks()) * kPerRank;
      std::vector<std::byte> bitmap(total);
      win.read_local(8, bitmap);
      for (std::uint64_t t = 0; t < total; ++t) {
        EXPECT_EQ(std::to_integer<int>(bitmap[t]), 1) << "ticket " << t;
      }
    }
    win.free();
  });
}

}  // namespace
}  // namespace cmpi::rma
