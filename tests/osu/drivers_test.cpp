#include "osu/drivers.hpp"

#include <gtest/gtest.h>

#include "fabric/profiles.hpp"
#include "queue/queue_matrix.hpp"

namespace cmpi::osu {
namespace {

SweepParams quick_params(std::vector<std::size_t> sizes, int procs) {
  SweepParams p;
  p.sizes = std::move(sizes);
  p.procs = procs;
  p.iters = 4;
  p.warmup = 1;
  return p;
}

TEST(OsuDrivers, SizeLadderIsPowersOfTwo) {
  const auto sizes = osu_sizes(1 << 20);
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 1u);
  EXPECT_EQ(sizes.back(), 1u << 20);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_EQ(sizes[i], 2 * sizes[i - 1]);
  }
}

TEST(OsuDrivers, WindowAdaptsToSize) {
  SweepParams p;
  p.window_bytes = 1 << 20;
  EXPECT_EQ(window_for(p, 1), 32);          // clamped high
  EXPECT_EQ(window_for(p, 1 << 16), 16);    // 1 MiB / 64 KiB
  EXPECT_EQ(window_for(p, 8 << 20), 2);     // clamped low
}

TEST(OsuDrivers, CxlLatencyInPaperBand) {
  const auto lat = cxl_twosided_latency_us(quick_params({8}, 2));
  ASSERT_EQ(lat.size(), 1u);
  EXPECT_GT(lat[0], 2.0);
  EXPECT_LT(lat[0], 40.0);
}

TEST(OsuDrivers, CxlOnesidedFasterThanTwosidedSmall) {
  // One-sided put skips the cell copy-out; its small-message latency is
  // at or below two-sided.
  const auto one = cxl_onesided_latency_us(quick_params({8}, 2));
  const auto two = cxl_twosided_latency_us(quick_params({8}, 2));
  EXPECT_LT(one[0], two[0] * 1.5);
}

TEST(OsuDrivers, CxlBandwidthGrowsWithMessageSize) {
  const auto bw = cxl_twosided_bw_mbps(quick_params({64, 4096, 65536}, 2));
  EXPECT_LT(bw[0], bw[1]);
  EXPECT_LT(bw[1], bw[2]);
}

TEST(OsuDrivers, CxlBandwidthScalesWithProcsUntilDeviceCap) {
  const auto two = cxl_twosided_bw_mbps(quick_params({65536}, 2));
  const auto eight = cxl_twosided_bw_mbps(quick_params({65536}, 8));
  EXPECT_GT(eight[0], 1.8 * two[0]);
  EXPECT_LT(eight[0], 9900.0);  // never beyond the device
}

TEST(OsuDrivers, NetLatencyMatchesProfileCalibration) {
  const auto eth =
      net_twosided_latency_us(fabric::tcp_ethernet(), quick_params({8}, 2));
  EXPECT_GT(eth[0], 120.0);
  EXPECT_LT(eth[0], 200.0);
  const auto mlx =
      net_twosided_latency_us(fabric::tcp_cx6dx(), quick_params({8}, 2));
  EXPECT_GT(mlx[0], 40.0);
  EXPECT_LT(mlx[0], 70.0);
}

TEST(OsuDrivers, NetEthernetBandwidthCapped) {
  const auto bw = net_twosided_bw_mbps(fabric::tcp_ethernet(),
                                       quick_params({1 << 20}, 4));
  EXPECT_GT(bw[0], 80.0);
  EXPECT_LT(bw[0], 125.0);  // 117.8 MB/s wire
}

TEST(OsuDrivers, NetOnesidedLatencyDominatedByProgressEmulation) {
  const auto lat =
      net_onesided_latency_us(fabric::tcp_cx6dx(), quick_params({8}, 2));
  EXPECT_GT(lat[0], 400.0);
  EXPECT_LT(lat[0], 900.0);
}

TEST(OsuDrivers, CxlBeatsEthernetEverywhere) {
  const auto params = quick_params({8, 4096, 262144}, 2);
  const auto cxl = cxl_twosided_bw_mbps(params);
  const auto eth = net_twosided_bw_mbps(fabric::tcp_ethernet(), params);
  for (std::size_t i = 0; i < params.sizes.size(); ++i) {
    EXPECT_GT(cxl[i], eth[i]) << "size " << params.sizes[i];
  }
}

TEST(OsuDrivers, BenchConfigSizesPoolGenerously) {
  const auto params = quick_params({8 << 20}, 16);
  const auto cfg = bench_universe_config(params);
  EXPECT_EQ(cfg.nodes, 2u);
  EXPECT_EQ(cfg.ranks_per_node, 8u);
  EXPECT_GE(cfg.pool_size,
            queue::QueueMatrix::footprint(16, params.ring_cells,
                                          params.cell_payload));
}

}  // namespace
}  // namespace cmpi::osu
