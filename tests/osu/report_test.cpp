#include "osu/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace cmpi::osu {
namespace {

TEST(FigureTable, StoresAndRetrieves) {
  FigureTable table("t", "Size", "MB/s");
  table.set("a", 64, 1.5);
  table.set("a", 128, 3.0);
  table.set("b", 64, 2.0);
  EXPECT_DOUBLE_EQ(table.at("a", 64), 1.5);
  EXPECT_DOUBLE_EQ(table.at("b", 64), 2.0);
  EXPECT_EQ(table.rows(), (std::vector<std::size_t>{64, 128}));
}

TEST(FigureTable, RowsKeepInsertionOrder) {
  FigureTable table("t", "Size", "us");
  table.set("s", 1024, 1);
  table.set("s", 1, 2);
  table.set("s", 64, 3);
  EXPECT_EQ(table.rows(), (std::vector<std::size_t>{1024, 1, 64}));
}

TEST(FigureTable, PrintContainsHeaderAndValues) {
  FigureTable table("My Figure", "Size", "MB/s");
  table.set("CXL", 1024, 123.4);
  table.set("TCP", 1024, 5.678);
  std::ostringstream out;
  table.print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("My Figure"), std::string::npos);
  EXPECT_NE(text.find("CXL"), std::string::npos);
  EXPECT_NE(text.find("1K"), std::string::npos);
  EXPECT_NE(text.find("123.4"), std::string::npos);
  EXPECT_NE(text.find("5.678"), std::string::npos);
}

TEST(FigureTable, PrintHandlesMissingCells) {
  FigureTable table("t", "Size", "us");
  table.set("a", 1, 1.0);
  table.set("b", 2, 2.0);  // "a" missing at 2, "b" missing at 1
  std::ostringstream out;
  table.print(out);
  EXPECT_NE(out.str().find("-"), std::string::npos);
}

TEST(FigureTable, CsvRoundTrips) {
  FigureTable table("t", "Size", "MB/s");
  table.set("a", 64, 1.5);
  table.set("b", 64, 2.5);
  std::ostringstream out;
  table.print_csv(out);
  EXPECT_EQ(out.str(), "Size,a,b\n64,1.5,2.5\n");
}

TEST(FigureTable, MaxRatio) {
  FigureTable table("t", "Size", "MB/s");
  table.set("fast", 1, 100);
  table.set("fast", 2, 50);
  table.set("slow", 1, 10);
  table.set("slow", 2, 25);
  EXPECT_DOUBLE_EQ(max_ratio(table, "fast", "slow"), 10.0);
  EXPECT_DOUBLE_EQ(max_ratio(table, "slow", "fast"), 0.5);
}

}  // namespace
}  // namespace cmpi::osu
