// Perf-regression smoke gate: a handful of 2-process bandwidth/latency
// points measured through the real stack and compared against checked-in
// baselines (bench/baselines/perf_smoke.json) at +-10%.
//
// The virtual clock makes the numbers near-deterministic (run-to-run
// jitter is well under 1%), so a 10% drift means a real change to the
// data path, not noise. To re-baseline after an intentional perf change:
//
//   CMPI_UPDATE_BASELINE=1 ./osu_test --gtest_filter='PerfSmoke.*'
//
// which rewrites the JSON in the source tree; commit it with the change
// that moved the numbers.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/units.hpp"
#include "osu/drivers.hpp"

namespace cmpi::osu {
namespace {

#ifndef CMPI_BASELINE_FILE
#error "CMPI_BASELINE_FILE must point at bench/baselines/perf_smoke.json"
#endif

constexpr double kTolerance = 0.10;

/// Flat {"name": value, ...} document — all this gate needs.
std::map<std::string, double> read_baselines() {
  std::ifstream in(CMPI_BASELINE_FILE);
  std::map<std::string, double> out;
  if (!in) {
    return out;
  }
  std::string key;
  char c;
  while (in.get(c)) {
    if (c == '"') {
      key.clear();
      while (in.get(c) && c != '"') {
        key += c;
      }
    } else if (c == ':' && !key.empty()) {
      double value = 0;
      if (in >> value) {
        out[key] = value;
      }
      key.clear();
    }
  }
  return out;
}

bool updating_baseline() {
  const char* env = std::getenv("CMPI_UPDATE_BASELINE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

/// Collects this process's measurements; on teardown in update mode the
/// last fixture to run rewrites the baseline file with everything seen.
class PerfSmoke : public ::testing::Test {
 protected:
  static SweepParams smoke_params(std::vector<std::size_t> sizes) {
    SweepParams p;
    p.sizes = std::move(sizes);
    p.procs = 2;
    p.iters = 3;
    p.warmup = 1;
    return p;
  }

  void check(const std::string& name, double measured) {
    measured_[name] = measured;
    if (updating_baseline()) {
      return;
    }
    const auto& base = baselines();
    const auto it = base.find(name);
    ASSERT_NE(it, base.end())
        << name << " has no baseline in " << CMPI_BASELINE_FILE
        << " — run once with CMPI_UPDATE_BASELINE=1";
    const double expected = it->second;
    EXPECT_NEAR(measured, expected, expected * kTolerance)
        << name << ": measured " << measured << " vs baseline " << expected
        << " (gate +-" << kTolerance * 100 << "%)";
  }

  static const std::map<std::string, double>& baselines() {
    static const std::map<std::string, double> b = read_baselines();
    return b;
  }

  static void TearDownTestSuite() {
    if (!updating_baseline() || measured_.empty()) {
      return;
    }
    // Merge over the existing file so a filtered run doesn't drop the
    // other metrics.
    std::map<std::string, double> merged = read_baselines();
    for (const auto& [k, v] : measured_) {
      merged[k] = v;
    }
    std::ofstream out(CMPI_BASELINE_FILE);
    ASSERT_TRUE(out) << "cannot write " << CMPI_BASELINE_FILE;
    out << "{\n";
    bool first = true;
    for (const auto& [k, v] : merged) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.1f", v);
      out << (first ? "" : ",\n") << "  \"" << k << "\": " << buf;
      first = false;
    }
    out << "\n}\n";
    std::fprintf(stderr, "updated %s (%zu metrics)\n", CMPI_BASELINE_FILE,
                 merged.size());
  }

  static std::map<std::string, double> measured_;
};

std::map<std::string, double> PerfSmoke::measured_;

TEST_F(PerfSmoke, TwosidedBandwidthAdaptive) {
  const auto params = smoke_params({64_KiB, 1_MiB, 8_MiB});
  const auto bw = cxl_twosided_bw_mbps(params);
  check("twosided_bw_mbps_64K", bw[0]);
  check("twosided_bw_mbps_1M", bw[1]);
  check("twosided_bw_mbps_8M", bw[2]);
}

TEST_F(PerfSmoke, TwosidedBandwidthEagerOnly) {
  // The pre-rendezvous chunked path must not rot either: it is the
  // fallback under pool pressure and the small-message default.
  auto params = smoke_params({8_MiB});
  params.rendezvous_threshold = ~std::size_t{0};
  const auto bw = cxl_twosided_bw_mbps(params);
  check("twosided_bw_mbps_8M_eager", bw[0]);
}

TEST_F(PerfSmoke, TwosidedLatencySmallEager) {
  // The <=16 KiB ladder stays on the eager path; the rendezvous work must
  // not have added a cycle to it (acceptance: within 1% of the seed —
  // the 10% gate here is the ongoing-regression net, the EXPERIMENTS.md
  // table records the 1% comparison).
  const auto params = smoke_params({4_KiB, 16_KiB});
  const auto lat = cxl_twosided_latency_us(params);
  check("twosided_lat_us_4K", lat[0]);
  check("twosided_lat_us_16K", lat[1]);
}

TEST_F(PerfSmoke, OnesidedBandwidth) {
  const auto params = smoke_params({1_MiB});
  const auto bw = cxl_onesided_bw_mbps(params);
  check("onesided_bw_mbps_1M", bw[0]);
}

TEST_F(PerfSmoke, MessageRateFanin) {
  // The progress-engine stress case: 16 senders stream 8-byte messages at
  // one receiver, where per-message protocol cost (scan + match + reap)
  // is everything and copy cost is nothing.
  MsgRateParams p;
  p.size = 8;
  p.senders = 16;
  p.window = 64;
  p.iters = 3;
  p.warmup = 1;
  const double doorbell = cxl_msgrate_fanin(p);
  p.legacy_scan = true;
  const double legacy = cxl_msgrate_fanin(p);
  check("msgrate_fanin_8B_16snd", doorbell);
  check("msgrate_fanin_8B_16snd_legacy", legacy);
  // Acceptance floor for the doorbell engine, independent of baseline
  // drift: at least 2x the pre-change scan loop's message rate.
  EXPECT_GE(doorbell, 2.0 * legacy)
      << "doorbell engine " << doorbell << " msg/s vs legacy scan " << legacy
      << " msg/s — the aggregated-doorbell progress path lost its edge";
}

TEST_F(PerfSmoke, HierarchicalAllreduce) {
  // Multi-pool scale-out gate: allreduce at 32 ranks across 4 pods, flat
  // recursive doubling vs the three-phase hierarchical algorithm over the
  // same pod fabric. The fabric tier (LogGP + serial router forwarding)
  // dominates both numbers, so they are stable enough for the +-10% gate.
  HierAllreduceParams p;
  p.pods = 4;
  p.ranks_per_pod = 8;
  p.sizes = {2048};
  p.iters = 5;
  p.warmup = 1;
  p.use_cxl_intra = false;
  p.mode = HierMode::kHier;
  const double hier = hier_allreduce_latency_us(p)[0];
  p.mode = HierMode::kFlat;
  const double flat = hier_allreduce_latency_us(p)[0];
  check("hier_allreduce_us_32r4p", hier);
  check("flat_allreduce_us_32r4p", flat);
  // Acceptance floor independent of baseline drift: the hierarchy must
  // keep a clear win over flat at this shape.
  EXPECT_GE(flat, 1.3 * hier)
      << "hierarchical allreduce " << hier << " us vs flat " << flat
      << " us — the pod-aware algorithm lost its edge";
}

}  // namespace
}  // namespace cmpi::osu
