// End-to-end property the paper's §3.5 discipline promises: run real
// multi-rank traffic through every protocol layer (SPSC rings, PSCW,
// fence, window locks, the sequence barrier, the arena) with the
// coherence checker interposed, and observe ZERO violations. Then break
// the discipline on purpose inside a Universe and observe the checker
// catch it — with rank and address attribution intact.
#include <gtest/gtest.h>

#include <vector>

#include "core/cmpi.hpp"
#include "cxlsim/coherence_checker.hpp"
#include "p2p/endpoint.hpp"
#include "rma/window.hpp"
#include "runtime/universe.hpp"

namespace cmpi::runtime {
namespace {

UniverseConfig checked_config(unsigned nodes, unsigned per_node) {
  UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.coherence_check = CoherenceChecking::kEnabled;
  return cfg;
}

std::vector<std::byte> pattern(std::size_t n, int seed) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::byte>((seed * 31 + i * 7) & 0xFF);
  }
  return out;
}

TEST(CoherenceIntegration, TwoSidedTrafficIsViolationFree) {
  Universe universe(checked_config(2, 2));
  universe.run([&](RankCtx& ctx) {
    Session mpi(ctx);
    // All-to-all, eager and synchronous, small and chunked.
    for (int peer = 0; peer < mpi.size(); ++peer) {
      if (peer == mpi.rank()) {
        continue;
      }
      const auto data = pattern(3000, mpi.rank() * 8 + peer);
      std::vector<std::byte> buffer(3000);
      check_ok(mpi.sendrecv(peer, mpi.rank(), data, peer, peer, buffer));
      EXPECT_EQ(buffer, pattern(3000, peer * 8 + mpi.rank()));
    }
    ctx.barrier();
    if (mpi.rank() == 0) {
      check_ok(mpi.ssend(1, 99, pattern(100, 5)));
    } else if (mpi.rank() == 1) {
      std::vector<std::byte> buffer(100);
      check_ok(mpi.recv(0, 99, buffer));
    }
    ctx.barrier();
    // The Session-level counter sees the same (absence of) violations.
    EXPECT_EQ(mpi.coherence_violations(), 0u);
  });
  ASSERT_NE(universe.coherence_checker(), nullptr);
  EXPECT_EQ(universe.coherence_checker()->summary().total(), 0u)
      << universe.coherence_checker()->summary_string();
}

TEST(CoherenceIntegration, OneSidedTrafficIsViolationFree) {
  Universe universe(checked_config(2, 2));
  universe.run([&](RankCtx& ctx) {
    rma::Window win = rma::Window::create(ctx, "chk", 4096);
    const int nranks = ctx.nranks();
    const int right = (ctx.rank() + 1) % nranks;
    std::vector<int> all(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      all[static_cast<std::size_t>(r)] = r;
    }
    // PSCW epoch: everyone puts into its right neighbour.
    win.post(all);
    win.start(all);
    const auto data = pattern(512, ctx.rank());
    win.put(right, 0, data);
    win.complete(all);
    win.wait(all);
    std::vector<std::byte> got(512);
    win.read_local(0, got);
    EXPECT_EQ(got, pattern(512, (ctx.rank() + nranks - 1) % nranks));
    // Fence epoch with accumulate (disjoint slices of rank 0's segment:
    // concurrent accumulates to the same bytes need a lock).
    win.fence();
    const std::vector<double> ones(8, 1.0);
    win.accumulate(0, 1024 + 64 * static_cast<std::uint64_t>(ctx.rank()),
                   ones, rma::AccumulateOp::kSum);
    win.fence();
    // Passive epoch under the window lock.
    win.lock(right);
    win.put(right, 2048, pattern(64, 7));
    win.unlock(right);
    ctx.barrier();
    win.free();
  });
  ASSERT_NE(universe.coherence_checker(), nullptr);
  EXPECT_EQ(universe.coherence_checker()->summary().total(), 0u)
      << universe.coherence_checker()->summary_string();
}

TEST(CoherenceIntegration, InjectedUnflushedStoreIsCaughtWithAttribution) {
  Universe universe(checked_config(2, 1));
  std::uint64_t poison_at = 0;
  universe.run([&](RankCtx& ctx) {
    rma::Window win = rma::Window::create(ctx, "bug", 4096);
    if (ctx.rank() == 1) {
      // Protocol bug: write the local segment with a plain cached store
      // (no flush) instead of write_local, then enter the fence as if the
      // data were pool-visible.
      poison_at = win.segment_offset(1);
      const auto data = pattern(64, 3);
      ctx.acc().store(poison_at, data);
    }
    win.fence();
    if (ctx.rank() == 0) {
      std::vector<std::byte> got(64);
      win.get(1, 0, got);  // reads the pool: rank 1's bytes never arrived
    }
    win.fence();
    ctx.barrier();
    win.free();
  });
  ASSERT_NE(universe.coherence_checker(), nullptr);
  const auto summary = universe.coherence_checker()->summary();
  ASSERT_GE(
      summary.count(cxlsim::CoherenceChecker::Kind::kStaleRead), 1u)
      << universe.coherence_checker()->summary_string();
  // The stored violation names the reader (rank 0) and the poisoned line.
  bool found = false;
  for (const auto& v : universe.coherence_checker()->violations()) {
    if (v.kind == cxlsim::CoherenceChecker::Kind::kStaleRead &&
        v.rank == 0 && v.offset == poison_at) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "no stale-read attributed to rank 0 @ the poisoned "
                        "line";
}

TEST(CoherenceIntegration, CheckerDisabledByConfig) {
  UniverseConfig cfg = checked_config(1, 2);
  cfg.coherence_check = CoherenceChecking::kDisabled;
  Universe universe(cfg);
  universe.run([&](RankCtx& ctx) { ctx.barrier(); });
  EXPECT_EQ(universe.coherence_checker(), nullptr);
}

}  // namespace
}  // namespace cmpi::runtime
