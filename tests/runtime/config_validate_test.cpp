// UniverseConfig knob validation: out-of-range knobs come back as
// kInvalidArgument naming the offending field, and Universe's constructor
// throws with the same message.
#include "runtime/config_validate.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "common/units.hpp"
#include "runtime/universe.hpp"

namespace cmpi::runtime {
namespace {

UniverseConfig valid_config() {
  UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 32_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  return cfg;
}

TEST(ConfigValidate, DefaultsAreValid) {
  EXPECT_TRUE(validate(valid_config()).is_ok());
}

TEST(ConfigValidate, SentinelKnobValuesAreValid) {
  UniverseConfig cfg = valid_config();
  cfg.rendezvous_threshold = ~std::size_t{0};  // rendezvous off
  cfg.rendezvous_quantum = 0;                  // default
  cfg.rendezvous_inflight = 0;                 // default
  EXPECT_TRUE(validate(cfg).is_ok());
  cfg.rendezvous_threshold = 512;  // the documented minimum
  EXPECT_TRUE(validate(cfg).is_ok());
}

TEST(ConfigValidate, TinyRendezvousThresholdNamesTheField) {
  UniverseConfig cfg = valid_config();
  cfg.rendezvous_threshold = 100;
  const Status status = validate(cfg);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.message().find("rendezvous_threshold"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("100"), std::string::npos)
      << "the message must quote the offending value";
}

TEST(ConfigValidate, QuantumOutsideRangeNamesTheField) {
  UniverseConfig cfg = valid_config();
  cfg.rendezvous_quantum = 1_KiB;  // below the 4 KiB floor
  Status status = validate(cfg);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.message().find("rendezvous_quantum"), std::string::npos);

  cfg.rendezvous_quantum = 32_MiB;  // above the 16 MiB ceiling
  status = validate(cfg);
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("rendezvous_quantum"), std::string::npos);

  cfg.rendezvous_quantum = 4_KiB;  // boundary is legal
  EXPECT_TRUE(validate(cfg).is_ok());
}

TEST(ConfigValidate, InflightAboveCapNamesTheField) {
  UniverseConfig cfg = valid_config();
  cfg.rendezvous_inflight = 65;
  const Status status = validate(cfg);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.message().find("rendezvous_inflight"), std::string::npos);
  cfg.rendezvous_inflight = 64;
  EXPECT_TRUE(validate(cfg).is_ok());
}

TEST(ConfigValidate, NonPositiveTunePeriodNamesTheField) {
  UniverseConfig cfg = valid_config();
  cfg.tune.period_ns = 0;
  Status status = validate(cfg);
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(status.message().find("tune.period_ns"), std::string::npos);

  cfg.tune.period_ns = -5.0;
  EXPECT_FALSE(validate(cfg).is_ok());
  cfg.tune.period_ns = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(validate(cfg).is_ok());
}

TEST(ConfigValidate, UniverseConstructorThrowsWithTheValidationMessage) {
  UniverseConfig cfg = valid_config();
  cfg.rendezvous_quantum = 1_KiB;
  try {
    Universe universe(cfg);
    FAIL() << "Universe must reject an invalid config";
  } catch (const std::invalid_argument& err) {
    EXPECT_NE(std::string(err.what()).find("rendezvous_quantum"),
              std::string::npos)
        << err.what();
  }
}

TEST(ConfigValidate, UniverseConstructorAcceptsExplicitKnobs) {
  UniverseConfig cfg = valid_config();
  cfg.rendezvous_threshold = 64_KiB;
  cfg.rendezvous_quantum = 128_KiB;
  cfg.rendezvous_inflight = 8;
  EXPECT_NO_THROW({ Universe universe(cfg); });
}

}  // namespace
}  // namespace cmpi::runtime
