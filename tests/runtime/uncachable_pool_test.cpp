#include <gtest/gtest.h>

#include "core/cmpi.hpp"

namespace cmpi::runtime {
namespace {

UniverseConfig uc_config() {
  UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 32_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.uncachable_pool = true;
  return cfg;
}

TEST(UncachablePool, WholePoolIsMarkedUncachable) {
  Universe universe(uc_config());
  EXPECT_EQ(universe.device().cacheability(0),
            cxlsim::Cacheability::kUncachable);
  EXPECT_EQ(universe.device().cacheability(universe.device().size() - 1),
            cxlsim::Cacheability::kUncachable);
}

TEST(UncachablePool, MessagePassingStaysCorrect) {
  // §3.5: the uncachable pool is a *correct* coherence strategy — only
  // slow. The whole two-sided path must still deliver intact data.
  Universe universe(uc_config());
  universe.run([](RankCtx& ctx) {
    Session mpi(ctx);
    std::vector<std::byte> data(3000);
    for (std::size_t i = 0; i < data.size(); ++i) {
      data[i] = static_cast<std::byte>((i * 7) & 0xFF);
    }
    if (mpi.rank() == 0) {
      check_ok(mpi.send(1, 0, data));
    } else {
      std::vector<std::byte> inbox(3000);
      check_ok(mpi.recv(0, 0, inbox).status());
      EXPECT_EQ(inbox, data);
    }
  });
}

TEST(UncachablePool, DrasticallySlowerBeyondMps) {
  // §4.5: beyond the PCIe MPS, UC accesses cost milliseconds.
  const auto latency_for = [](bool uncachable) {
    UniverseConfig cfg = uc_config();
    cfg.uncachable_pool = uncachable;
    Universe universe(cfg);
    double result = 0;
    universe.run([&](RankCtx& ctx) {
      Session mpi(ctx);
      std::vector<std::byte> buffer(8192);  // > 2 KiB MPS
      ctx.barrier();
      const double start = ctx.clock().now();
      if (mpi.rank() == 0) {
        check_ok(mpi.send(1, 0, buffer));
        check_ok(mpi.recv(1, 0, buffer).status());
      } else {
        check_ok(mpi.recv(0, 0, buffer).status());
        check_ok(mpi.send(0, 0, buffer));
      }
      if (mpi.rank() == 0) {
        result = ctx.clock().now() - start;
      }
    });
    return result;
  };
  const double software = latency_for(false);
  const double uncachable = latency_for(true);
  EXPECT_GT(uncachable, 20 * software);
}

TEST(UncachablePool, OneSidedPutGetStillCorrect) {
  Universe universe(uc_config());
  universe.run([](RankCtx& ctx) {
    Session mpi(ctx);
    rma::Window win = mpi.create_window("uc_win", 1024);
    win.fence();
    const std::uint64_t value = 0xFEEDu + static_cast<std::uint64_t>(
                                              mpi.rank());
    win.put(1 - mpi.rank(), 0, std::as_bytes(std::span(&value, 1)));
    win.fence();
    std::uint64_t got = 0;
    win.read_local(0, std::as_writable_bytes(std::span(&got, 1)));
    EXPECT_EQ(got, 0xFEEDu + static_cast<std::uint64_t>(1 - mpi.rank()));
    win.free();
  });
}

}  // namespace
}  // namespace cmpi::runtime
