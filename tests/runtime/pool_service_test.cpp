// Multi-tenant pool service: admission control, region allocation and the
// join_for backoff state machine.
//
// Everything time-dependent runs on a FAKE clock: PoolServiceConfig's
// now_fn/sleep_fn are injected, so the backoff tests assert the exact
// delay sequence (jittered, exponentially bounded, deadline-clipped)
// without sleeping for real — and a busy-spinning retry loop would show
// up as an absurd attempt count, not as a slow test.
#include "runtime/pool_service.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <optional>
#include <set>
#include <vector>

#include "common/units.hpp"

namespace cmpi::runtime {
namespace {

using namespace std::chrono_literals;
using std::chrono::microseconds;

/// Deterministic time source for join_for: now() returns a counter that
/// only sleep() advances.
struct FakeClock {
  std::chrono::steady_clock::time_point now{};
  std::vector<microseconds> sleeps;

  void install(PoolServiceConfig& cfg) {
    cfg.now_fn = [this] { return now; };
    cfg.sleep_fn = [this](microseconds d) {
      sleeps.push_back(d);
      now += d;
    };
  }
};

PoolServiceConfig small_service(std::size_t pool = 32_MiB) {
  PoolServiceConfig cfg;
  cfg.pool_size = pool;
  return cfg;
}

TenantConfig small_tenant(std::size_t region = 2_MiB) {
  TenantConfig tenant;
  tenant.nodes = 2;
  tenant.ranks_per_node = 1;
  tenant.region_size = region;
  return tenant;
}

TEST(PoolService, JoinAssignsDisjointRegionsAndMonotonicIds) {
  PoolService service(small_service());
  TenantSession a = check_ok(service.join(small_tenant()));
  TenantSession b = check_ok(service.join(small_tenant()));

  EXPECT_EQ(a.tenant_id(), 1);
  EXPECT_EQ(b.tenant_id(), 2);
  // Regions never overlap and never touch the service's reserved page.
  EXPECT_GE(a.region_base(), 64u * 1024u);
  EXPECT_GE(b.region_base(), 64u * 1024u);
  const auto a_end = a.region_base() + a.region_size();
  const auto b_end = b.region_base() + b.region_size();
  EXPECT_TRUE(a_end <= b.region_base() || b_end <= a.region_base());
  // Global rank namespaces are disjoint too (fault-plan targeting).
  EXPECT_EQ(a.global_rank(0), 0);
  EXPECT_EQ(a.global_rank(1), 1);
  EXPECT_EQ(b.global_rank(0), 2);
  // Each universe reports its own fenced region.
  EXPECT_EQ(a.universe().region_base(), a.region_base());
  EXPECT_EQ(a.universe().region_size(), a.region_size());

  const AdmissionStats stats = service.admission_stats();
  EXPECT_EQ(stats.admissions, 2u);
  EXPECT_EQ(stats.active_tenants, 2u);
  EXPECT_EQ(stats.rejections, 0u);
}

TEST(PoolService, TenantUniverseRunsEntirelyInsideItsRegion) {
  PoolService service(small_service());
  TenantSession session = check_ok(service.join(small_tenant(4_MiB)));
  session.universe().run([](RankCtx& ctx) {
    ctx.barrier();
    if (ctx.rank() == 0) {
      const auto obj = check_ok(ctx.arena().create("tenant_obj", 4096));
      std::vector<std::byte> page(4096, std::byte{0x5a});
      ctx.acc().bulk_write(obj.pool_offset, page);
    }
    ctx.barrier();
  });
  // The blast-radius fence saw no access leave the region.
  const Universe::DomainStats blast = session.universe().domain_stats();
  EXPECT_EQ(blast.writes_outside, 0u);
  EXPECT_EQ(blast.reads_outside, 0u);
}

TEST(PoolService, TenantCapRejectsWithAdmissionRejected) {
  PoolServiceConfig cfg = small_service();
  cfg.max_tenants = 1;
  PoolService service(cfg);
  TenantSession only = check_ok(service.join(small_tenant()));

  const Result<TenantSession> second = service.join(small_tenant());
  ASSERT_FALSE(second.is_ok());
  EXPECT_EQ(second.status().code(), ErrorCode::kAdmissionRejected);
  EXPECT_EQ(service.admission_stats().rejections, 1u);

  // The slot frees on leave; admission succeeds again.
  only.leave();
  EXPECT_EQ(service.admission_stats().active_tenants, 0u);
  TenantSession next = check_ok(service.join(small_tenant()));
  EXPECT_EQ(next.tenant_id(), 2);  // ids are never reused
}

TEST(PoolService, RegionExhaustionRejectsAndRecoversAfterLeave) {
  // 8 MiB pool minus the 64 KiB service page: one 4 MiB region fits,
  // a second does not.
  PoolService service(small_service(8_MiB));
  std::optional<TenantSession> first(check_ok(service.join(small_tenant(4_MiB))));

  const Result<TenantSession> crowded = service.join(small_tenant(4_MiB));
  ASSERT_FALSE(crowded.is_ok());
  EXPECT_EQ(crowded.status().code(), ErrorCode::kAdmissionRejected);

  const std::uint64_t reused_base = first->region_base();
  first.reset();  // leave via destructor
  TenantSession again = check_ok(service.join(small_tenant(4_MiB)));
  // First-fit hands the reclaimed region back out.
  EXPECT_EQ(again.region_base(), reused_base);
}

TEST(PoolService, BandwidthOversubscriptionRejects) {
  PoolService service(small_service());
  TenantConfig heavy = small_tenant();
  heavy.bandwidth_share = 0.6;
  TenantConfig medium = small_tenant();
  medium.bandwidth_share = 0.5;

  std::optional<TenantSession> holder(check_ok(service.join(heavy)));
  // The device-level WFQ share is registered while the tenant is live.
  EXPECT_DOUBLE_EQ(service.device().timing().bandwidth_share(
                       static_cast<unsigned>(holder->tenant_id())),
                   0.6);

  const Result<TenantSession> refused = service.join(medium);
  ASSERT_FALSE(refused.is_ok());
  EXPECT_EQ(refused.status().code(), ErrorCode::kAdmissionRejected);

  const int held_id = holder->tenant_id();
  holder.reset();
  // The share is withdrawn with the tenant, so the reservation fits now.
  EXPECT_DOUBLE_EQ(
      service.device().timing().bandwidth_share(static_cast<unsigned>(held_id)),
      0.0);
  TenantSession admitted = check_ok(service.join(medium));
  EXPECT_DOUBLE_EQ(service.device().timing().bandwidth_share(
                       static_cast<unsigned>(admitted.tenant_id())),
                   0.5);
}

TEST(PoolService, JoinForBackoffIsJitteredBoundedAndDeadlineClipped) {
  PoolServiceConfig cfg = small_service();
  cfg.max_tenants = 1;
  cfg.backoff.initial = 200us;
  cfg.backoff.cap = 10000us;
  cfg.backoff.multiplier = 2.0;
  FakeClock clock;
  clock.install(cfg);
  PoolService service(cfg);
  TenantSession blocker = check_ok(service.join(small_tenant()));

  constexpr auto kDeadline = 100ms;
  const Result<TenantSession> verdict =
      service.join_for(small_tenant(), kDeadline);

  // Deadline respected, carrying the last rejection's diagnosis.
  ASSERT_FALSE(verdict.is_ok());
  EXPECT_EQ(verdict.status().code(), ErrorCode::kTimedOut);
  EXPECT_NE(verdict.status().message().find("tenants admitted"),
            std::string::npos);

  // No busy-spin: the whole 100 ms window was covered by a handful of
  // exponentially-growing sleeps, not thousands of instant retries.
  ASSERT_GE(clock.sleeps.size(), 5u);
  ASSERT_LE(clock.sleeps.size(), 64u);
  // The fake clock advanced exactly to the deadline: every delay was
  // clipped to the remaining budget, never past it.
  microseconds total{0};
  for (const microseconds d : clock.sleeps) {
    total += d;
  }
  EXPECT_EQ(total, kDeadline);

  // Every delay obeys the jittered-exponential envelope
  // [0.5, 1.0] * min(cap, initial * multiplier^k) — except a final
  // delay shortened by the deadline clip.
  std::set<double> jitter_ratios;
  double envelope = static_cast<double>(cfg.backoff.initial.count());
  const double cap = static_cast<double>(cfg.backoff.cap.count());
  for (std::size_t k = 0; k < clock.sleeps.size(); ++k) {
    const double delay = static_cast<double>(clock.sleeps[k].count());
    EXPECT_LE(delay, envelope + 1.0) << "delay " << k << " above envelope";
    if (k + 1 < clock.sleeps.size()) {  // the last one may be clipped
      EXPECT_GE(delay, 0.5 * envelope - 1.0)
          << "delay " << k << " below the jitter floor";
      jitter_ratios.insert(delay / envelope);
    }
    envelope = std::min(cap, envelope * cfg.backoff.multiplier);
  }
  // Jitter actually moved the delays: the ratios are not one constant.
  EXPECT_GE(jitter_ratios.size(), 3u);
  EXPECT_EQ(service.admission_stats().retries, clock.sleeps.size());
}

TEST(PoolService, JoinForAdmitsWhenCapacityFreesMidBackoff) {
  PoolServiceConfig cfg = small_service();
  cfg.max_tenants = 1;
  FakeClock clock;
  clock.install(cfg);
  std::optional<PoolService> service;
  std::optional<TenantSession> blocker;

  // Release the blocking tenant from inside the third backoff sleep —
  // the very situation join_for exists for.
  const auto base_sleep = cfg.sleep_fn;
  cfg.sleep_fn = [&](microseconds d) {
    base_sleep(d);
    if (clock.sleeps.size() == 3) {
      blocker.reset();
    }
  };
  service.emplace(cfg);
  blocker.emplace(check_ok(service->join(small_tenant())));

  TenantSession winner = check_ok(service->join_for(small_tenant(), 500ms));
  EXPECT_EQ(winner.tenant_id(), 2);
  EXPECT_EQ(clock.sleeps.size(), 3u);
  const AdmissionStats stats = service->admission_stats();
  EXPECT_EQ(stats.admissions, 2u);
  EXPECT_EQ(stats.retries, 3u);
  EXPECT_EQ(stats.active_tenants, 1u);
}

TEST(PoolService, JoinForReturnsNonAdmissionErrorsImmediately) {
  FakeClock clock;
  PoolServiceConfig cfg = small_service();
  clock.install(cfg);
  PoolService service(cfg);
  TenantConfig bogus = small_tenant();
  bogus.region_size = 1_GiB;  // can never fit a 32 MiB pool
  // Region exhaustion IS an admission verdict — it retries until the
  // deadline; this guards the loop classification itself.
  const Result<TenantSession> verdict = service.join_for(bogus, 10ms);
  ASSERT_FALSE(verdict.is_ok());
  EXPECT_EQ(verdict.status().code(), ErrorCode::kTimedOut);
  EXPECT_GT(clock.sleeps.size(), 0u);
}

}  // namespace
}  // namespace cmpi::runtime
