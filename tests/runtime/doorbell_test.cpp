// Doorbell unit tests: the configurable recheck interval, the deadline
// overload that the liveness layer's *_for variants build on, and the
// epoch()/wait_past() arming discipline that closes the check-then-sleep
// race (a ring landing between the caller's last condition check and the
// sleep must wake the sleeper immediately, not after a recheck interval).
#include "runtime/doorbell.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <random>
#include <thread>
#include <vector>

namespace cmpi::runtime {
namespace {

using namespace std::chrono_literals;

TEST(Doorbell, RecheckIntervalIsConfigurable) {
  EXPECT_EQ(Doorbell().recheck_interval(), 1ms);
  EXPECT_EQ(Doorbell(7ms).recheck_interval(), 7ms);
}

TEST(Doorbell, DeadlineOverloadReturnsTrueWhenPredicateAlreadyHolds) {
  Doorbell bell;
  const bool ok = bell.wait_until([] { return true; },
                                  std::chrono::steady_clock::now() + 5s);
  EXPECT_TRUE(ok);
}

TEST(Doorbell, DeadlineOverloadReturnsFalseAfterExpiry) {
  Doorbell bell;
  const auto start = std::chrono::steady_clock::now();
  const bool ok = bell.wait_until([] { return false; }, start + 50ms);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(ok);
  EXPECT_GE(elapsed, 50ms);
  // Bounded: it must not have waited anywhere near "forever".
  EXPECT_LT(elapsed, 5s);
}

TEST(Doorbell, RingBeforeDeadlineWakesTheWaiter) {
  Doorbell bell;
  std::atomic<bool> flag{false};
  std::thread ringer([&] {
    std::this_thread::sleep_for(30ms);
    flag = true;
    bell.ring();
  });
  const auto start = std::chrono::steady_clock::now();
  const bool ok =
      bell.wait_until([&] { return flag.load(); }, start + 30s);
  EXPECT_TRUE(ok);
  // Satisfied by the ring, not by the (far) deadline.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 10s);
  ringer.join();
}

TEST(Doorbell, RecheckIntervalBoundsMissedWakeups) {
  // A predicate made true WITHOUT a ring (out-of-scope writer) is still
  // noticed within roughly one recheck interval.
  Doorbell bell(5ms);
  std::atomic<bool> flag{false};
  std::thread writer([&] {
    std::this_thread::sleep_for(20ms);
    flag = true;  // no ring()
  });
  const bool ok =
      bell.wait_until([&] { return flag.load(); },
                      std::chrono::steady_clock::now() + 30s);
  EXPECT_TRUE(ok);
  writer.join();
}

TEST(Doorbell, WaitPastReturnsImmediatelyAfterInterveningRing) {
  // The lost-wakeup scenario, deterministically: the caller arms, the
  // ring lands BEFORE the sleep, and wait_past must return on the
  // generation bump. With a 10 s recheck interval, relying on the
  // timeout instead would hang this test visibly.
  Doorbell bell(10s);
  const std::uint64_t armed = bell.epoch();
  bell.ring();  // between the condition check and the sleep
  const auto start = std::chrono::steady_clock::now();
  bell.wait_past(armed);
  EXPECT_LT(std::chrono::steady_clock::now() - start, 5s);
}

TEST(Doorbell, WaitPastSleepsWhenNothingRangSinceArming) {
  // Control: with no intervening ring, wait_past really does sleep (until
  // the recheck interval or a later ring) instead of spinning through.
  Doorbell bell(30ms);
  const std::uint64_t armed = bell.epoch();
  const auto start = std::chrono::steady_clock::now();
  bell.wait_past(armed);
  EXPECT_GE(std::chrono::steady_clock::now() - start, 25ms);
}

TEST(Doorbell, SeededStressNoLostWakeups) {
  // Four producers ring with seeded pseudo-random jitter while one
  // consumer runs the arm-then-check-then-sleep loop the p2p wait path
  // uses. The 10 s recheck interval turns any lost wake-up into a visible
  // stall, so finishing promptly proves the epoch discipline holds under
  // real interleavings (run under TSan in the sanitize CI job).
  Doorbell bell(10s);
  constexpr int kProducers = 4;
  constexpr int kRingsEach = 200;
  std::atomic<int> count{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&bell, &count, p] {
      std::mt19937 rng(0xD00DBE11u + static_cast<unsigned>(p));
      std::uniform_int_distribution<int> jitter(0, 64);
      for (int i = 0; i < kRingsEach; ++i) {
        count.fetch_add(1, std::memory_order_relaxed);
        bell.ring();
        for (volatile int spin = jitter(rng); spin > 0; --spin) {
        }
      }
    });
  }
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    const std::uint64_t armed = bell.epoch();
    if (count.load(std::memory_order_relaxed) >= kProducers * kRingsEach) {
      break;
    }
    bell.wait_past(armed);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  for (std::thread& t : producers) {
    t.join();
  }
  // One lost wake-up would cost a full 10 s recheck; the whole run must
  // come in far under that.
  EXPECT_LT(elapsed, 8s);
}

}  // namespace
}  // namespace cmpi::runtime
