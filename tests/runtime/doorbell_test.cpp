// Doorbell unit tests: the configurable recheck interval and the
// deadline overload that the liveness layer's *_for variants build on.
#include "runtime/doorbell.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace cmpi::runtime {
namespace {

using namespace std::chrono_literals;

TEST(Doorbell, RecheckIntervalIsConfigurable) {
  EXPECT_EQ(Doorbell().recheck_interval(), 1ms);
  EXPECT_EQ(Doorbell(7ms).recheck_interval(), 7ms);
}

TEST(Doorbell, DeadlineOverloadReturnsTrueWhenPredicateAlreadyHolds) {
  Doorbell bell;
  const bool ok = bell.wait_until([] { return true; },
                                  std::chrono::steady_clock::now() + 5s);
  EXPECT_TRUE(ok);
}

TEST(Doorbell, DeadlineOverloadReturnsFalseAfterExpiry) {
  Doorbell bell;
  const auto start = std::chrono::steady_clock::now();
  const bool ok = bell.wait_until([] { return false; }, start + 50ms);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_FALSE(ok);
  EXPECT_GE(elapsed, 50ms);
  // Bounded: it must not have waited anywhere near "forever".
  EXPECT_LT(elapsed, 5s);
}

TEST(Doorbell, RingBeforeDeadlineWakesTheWaiter) {
  Doorbell bell;
  std::atomic<bool> flag{false};
  std::thread ringer([&] {
    std::this_thread::sleep_for(30ms);
    flag = true;
    bell.ring();
  });
  const auto start = std::chrono::steady_clock::now();
  const bool ok =
      bell.wait_until([&] { return flag.load(); }, start + 30s);
  EXPECT_TRUE(ok);
  // Satisfied by the ring, not by the (far) deadline.
  EXPECT_LT(std::chrono::steady_clock::now() - start, 10s);
  ringer.join();
}

TEST(Doorbell, RecheckIntervalBoundsMissedWakeups) {
  // A predicate made true WITHOUT a ring (out-of-scope writer) is still
  // noticed within roughly one recheck interval.
  Doorbell bell(5ms);
  std::atomic<bool> flag{false};
  std::thread writer([&] {
    std::this_thread::sleep_for(20ms);
    flag = true;  // no ring()
  });
  const bool ok =
      bell.wait_until([&] { return flag.load(); },
                      std::chrono::steady_clock::now() + 30s);
  EXPECT_TRUE(ok);
  writer.join();
}

}  // namespace
}  // namespace cmpi::runtime
