#include "runtime/universe.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace cmpi::runtime {
namespace {

UniverseConfig small_config(unsigned nodes = 2, unsigned per_node = 2) {
  UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 32_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  return cfg;
}

TEST(Universe, RunsOneThreadPerRank) {
  Universe universe(small_config(2, 2));
  std::atomic<int> count{0};
  std::array<std::atomic<bool>, 4> seen{};
  universe.run([&](RankCtx& ctx) {
    count.fetch_add(1);
    seen[static_cast<std::size_t>(ctx.rank())] = true;
    EXPECT_EQ(ctx.nranks(), 4);
  });
  EXPECT_EQ(count.load(), 4);
  for (const auto& s : seen) {
    EXPECT_TRUE(s.load());
  }
}

TEST(Universe, BlockNodeMapping) {
  Universe universe(small_config(2, 2));
  universe.run([&](RankCtx& ctx) {
    EXPECT_EQ(ctx.node(), ctx.rank() / 2);
  });
}

TEST(Universe, CurrentContextIsThreadLocal) {
  Universe universe(small_config(1, 2));
  universe.run([&](RankCtx& ctx) {
    EXPECT_EQ(RankCtx::current(), &ctx);
  });
  EXPECT_EQ(RankCtx::current(), nullptr);
}

TEST(Universe, EveryRankAttachesTheSameArena) {
  Universe universe(small_config(2, 1));
  std::atomic<std::uint64_t> offsets[2];
  universe.run([&](RankCtx& ctx) {
    offsets[ctx.rank()] = ctx.arena().objects_offset();
  });
  EXPECT_EQ(offsets[0].load(), offsets[1].load());
}

TEST(Universe, ArenaObjectsVisibleAcrossRanks) {
  Universe universe(small_config(2, 1));
  universe.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      check_ok(ctx.arena().create("bootstrap_obj", 4096));
    }
    ctx.barrier();
    if (ctx.rank() == 1) {
      const auto handle = check_ok(ctx.arena().open("bootstrap_obj"));
      EXPECT_EQ(handle.size, 4096u);
    }
  });
}

TEST(Universe, RankExceptionPropagates) {
  Universe universe(small_config(1, 2));
  EXPECT_THROW(
      universe.run([&](RankCtx& ctx) {
        if (ctx.rank() == 1) {
          throw std::runtime_error("rank 1 failed");
        }
      }),
      std::runtime_error);
}

TEST(Universe, RunTwiceOnSameUniverse) {
  Universe universe(small_config(2, 1));
  for (int round = 0; round < 2; ++round) {
    universe.run([&](RankCtx& ctx) {
      // Names must not collide across rounds.
      check_ok(ctx.arena().create(
          "round" + std::to_string(round) + "_" + std::to_string(ctx.rank()),
          64));
    });
  }
}

TEST(Universe, MpiOverheadCharged) {
  Universe universe(small_config(1, 1));
  universe.run([&](RankCtx& ctx) {
    const double before = ctx.clock().now();
    ctx.charge_mpi_overhead();
    EXPECT_DOUBLE_EQ(ctx.clock().now() - before,
                     ctx.config().mpi_call_overhead);
  });
}

TEST(SeqBarrier, SynchronizesClocksToSlowest) {
  Universe universe(small_config(2, 2));
  universe.run([&](RankCtx& ctx) {
    // Rank 2 is far ahead in virtual time.
    if (ctx.rank() == 2) {
      ctx.clock().advance(1e6);
    }
    ctx.barrier();
    EXPECT_GE(ctx.clock().now(), 1e6);
  });
}

TEST(SeqBarrier, ActsAsExecutionBarrier) {
  Universe universe(small_config(2, 2));
  std::atomic<int> before{0};
  std::atomic<bool> violated{false};
  for (int round = 0; round < 5; ++round) {
    before = 0;
    universe.run([&](RankCtx& ctx) {
      before.fetch_add(1);
      ctx.barrier();
      if (before.load() != ctx.nranks()) {
        violated = true;
      }
    });
  }
  EXPECT_FALSE(violated.load());
}

TEST(SeqBarrier, ReusableManyTimes) {
  Universe universe(small_config(2, 1));
  universe.run([&](RankCtx& ctx) {
    for (int i = 0; i < 50; ++i) {
      ctx.barrier();
    }
  });
}

TEST(Doorbell, WaitUntilReturnsWhenPredicateHolds) {
  Doorbell bell;
  std::atomic<bool> flag{false};
  std::thread setter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    flag.store(true);
    bell.ring();
  });
  bell.wait_until([&] { return flag.load(); });
  setter.join();
  EXPECT_TRUE(flag.load());
}

TEST(Doorbell, WaitOnceTimesOutWithoutRing) {
  Doorbell bell;
  const auto start = std::chrono::steady_clock::now();
  bell.wait_once();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_LT(elapsed, std::chrono::milliseconds(100));
}

}  // namespace
}  // namespace cmpi::runtime
