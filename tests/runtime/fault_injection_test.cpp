// Fault injection and failure detection/recovery, end to end: scripted
// rank crashes (access-count and sync-point triggered), poisoned-line
// reads, degraded-link latency, and the deadline-aware blocking variants
// (SeqBarrier::enter_for, BakeryLock via Window::lock_for, Endpoint's
// *_for family) that let survivors observe a peer's death instead of
// hanging. Includes the acceptance scenario from the robustness issue:
// a rank killed while holding a window lock mid-put, with the survivor
// breaking the lock via the heartbeat lease and completing its epoch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "core/cmpi.hpp"
#include "cxlsim/fault_injector.hpp"
#include "runtime/failure_detector.hpp"
#include "runtime/seq_barrier.hpp"
#include "runtime/universe.hpp"

namespace cmpi::runtime {
namespace {

using namespace std::chrono_literals;

UniverseConfig fault_config(unsigned nodes = 2, unsigned per_node = 1) {
  UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 32_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  // Short lease so dead-peer verdicts arrive quickly; the deadlines the
  // tests pass are an order of magnitude longer, so a live-but-slow CI
  // machine cannot flip a kPeerFailed expectation into kTimedOut.
  cfg.failure_lease = 50ms;
  return cfg;
}

TEST(FaultInjection, NoPlanMeansNoInjector) {
  // Zero-cost-when-off: an empty plan installs nothing — every Accessor
  // fault hook stays a single null pointer compare.
  Universe universe(fault_config());
  EXPECT_EQ(universe.fault_injector(), nullptr);
  universe.run([](RankCtx& ctx) { ctx.barrier(); });
  EXPECT_EQ(universe.fault_injector(), nullptr);
  EXPECT_TRUE(universe.failed_ranks().empty());
}

TEST(FaultInjection, CrashAtNthAccessKillsOnlyThatRank) {
  UniverseConfig cfg = fault_config();
  cfg.fault_plan.crash_at_access.push_back({.rank = 1, .nth = 1});
  Universe universe(cfg);
  ASSERT_NE(universe.fault_injector(), nullptr);

  std::atomic<bool> rank0_finished{false};
  std::atomic<bool> rank1_finished{false};
  universe.run([&](RankCtx& ctx) {
    // Rank 1's very first pool access (inside its arena attach) fires the
    // crash; Universe::run absorbs the RankCrashed at the rank boundary,
    // so this body never runs for rank 1 and the run() call still returns
    // normally. Rank 0 does purely local work and is unaffected.
    if (ctx.rank() == 0) {
      check_ok(ctx.arena().create("survivor_obj", 4096));
      rank0_finished = true;
    } else {
      rank1_finished = true;
    }
  });

  EXPECT_TRUE(rank0_finished.load());
  EXPECT_FALSE(rank1_finished.load());
  const cxlsim::FaultInjector* fi = universe.fault_injector();
  EXPECT_TRUE(fi->rank_crashed(1));
  EXPECT_FALSE(fi->rank_crashed(0));
  EXPECT_EQ(fi->count(cxlsim::FaultInjector::Kind::kCrash), 1u);
  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{1}));
}

TEST(FaultInjection, CrashAtSyncPointFiresAtTheScriptedOccurrence) {
  UniverseConfig cfg = fault_config(1, 1);
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 0, .point = "test-kill", .occurrence = 2});
  Universe universe(cfg);

  std::atomic<int> arrivals{0};
  universe.run([&](RankCtx& ctx) {
    ctx.acc().fault_sync_point("test-kill");  // occurrence 1: survives
    arrivals = 1;
    ctx.acc().fault_sync_point("test-kill");  // occurrence 2: crashes
    arrivals = 2;                             // unreachable
  });

  EXPECT_EQ(arrivals.load(), 1);
  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{0}));
  const auto events = universe.fault_injector()->events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, cxlsim::FaultInjector::Kind::kCrash);
  EXPECT_EQ(events[0].rank, 0);
}

TEST(FaultInjection, PoisonedReadSurfacesDataPoisoned) {
  UniverseConfig cfg = fault_config(1, 1);
  // Poison the whole pool: any post-bootstrap read observes it (the plan
  // is installed after bootstrap, so formatting traffic stays clean).
  cfg.fault_plan.poison.push_back({.offset = 0, .size = cfg.pool_size});
  Universe universe(cfg);

  universe.run([&](RankCtx& ctx) {
    // Arena attach already read poisoned metadata; drain the sticky flag.
    (void)ctx.acc().take_poison_status("attach");
    ASSERT_FALSE(ctx.acc().poison_pending());

    const auto obj = check_ok(ctx.arena().create("poisoned_obj", 4096));
    std::vector<std::byte> buf(256);
    ctx.acc().bulk_read(obj.pool_offset, buf);
    EXPECT_TRUE(ctx.acc().poison_pending());
    const Status s = ctx.acc().take_poison_status("poisoned_obj read");
    EXPECT_EQ(s.code(), ErrorCode::kDataPoisoned);
    // The flag is consumed: a second take reports clean.
    EXPECT_FALSE(ctx.acc().poison_pending());
    EXPECT_TRUE(ctx.acc().take_poison_status("again").is_ok());
  });

  EXPECT_GT(universe.fault_injector()->count(
                cxlsim::FaultInjector::Kind::kPoisonedRead),
            0u);
  EXPECT_TRUE(universe.failed_ranks().empty());
}

TEST(FaultInjection, DegradedLinkStretchesVirtualTime) {
  // The same workload under a 8x degraded link must take strictly more
  // virtual time (the multiplier applies to flush write-backs and fills).
  const auto run_workload = [](double multiplier) {
    UniverseConfig cfg = fault_config(1, 1);
    cfg.fault_plan.degraded_link_multiplier = multiplier;
    Universe universe(cfg);
    std::atomic<double> elapsed{0.0};
    universe.run([&](RankCtx& ctx) {
      const auto obj = check_ok(ctx.arena().create("timing_obj", 64_KiB));
      std::vector<std::byte> buf(4096, std::byte{0x5a});
      for (int i = 0; i < 16; ++i) {
        const std::uint64_t at =
            obj.pool_offset + static_cast<std::uint64_t>(i) * buf.size();
        ctx.acc().coherent_write(at, buf);
        ctx.acc().coherent_read(at, buf);
      }
      elapsed = ctx.clock().now();
    });
    return elapsed.load();
  };

  const double baseline = run_workload(1.0);
  const double degraded = run_workload(8.0);
  EXPECT_GT(baseline, 0.0);
  EXPECT_GT(degraded, baseline);
}

TEST(FaultInjection, BarrierEnterForReportsDeadPeer) {
  UniverseConfig cfg = fault_config();
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "test-kill", .occurrence = 1});
  Universe universe(cfg);

  universe.run([&](RankCtx& ctx) {
    if (ctx.rank() == 1) {
      ctx.acc().fault_sync_point("test-kill");
      FAIL() << "scripted crash did not fire";
    }
    // Rank 0 sets up a private barrier over an arena object (single
    // writer: rank 1 is already dead) and waits on the corpse.
    const auto obj = check_ok(
        ctx.arena().create("dead_barrier", SeqBarrier::footprint(2)));
    SeqBarrier::format(ctx.acc(), obj.pool_offset, 2);
    SeqBarrier barrier(ctx.acc(), obj.pool_offset, 2, 0);
    const Status s = barrier.enter_for(ctx.acc(), ctx.doorbell(),
                                       ctx.failure_detector(), 5000ms);
    EXPECT_EQ(s.code(), ErrorCode::kPeerFailed);
    EXPECT_NE(s.message().find("rank 1"), std::string::npos) << s.message();
  });

  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{1}));
}

TEST(FaultInjection, BarrierEnterForTimesOutOnSlowLivePeer) {
  UniverseConfig cfg = fault_config();
  cfg.failure_lease = 2000ms;  // nobody dies in this test
  Universe universe(cfg);

  universe.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      check_ok(ctx.arena().create("slow_barrier", SeqBarrier::footprint(2)));
    }
    ctx.barrier();
    const auto obj = check_ok(ctx.arena().open("slow_barrier"));
    if (ctx.rank() == 0) {
      SeqBarrier::format(ctx.acc(), obj.pool_offset, 2);
    }
    ctx.barrier();
    SeqBarrier barrier(ctx.acc(), obj.pool_offset, 2,
                       static_cast<std::size_t>(ctx.rank()));
    if (ctx.rank() == 0) {
      // Rank 1 is alive (beating) but slow: the deadline expires first.
      const Status s = barrier.enter_for(ctx.acc(), ctx.doorbell(),
                                         ctx.failure_detector(), 150ms);
      EXPECT_EQ(s.code(), ErrorCode::kTimedOut);
    } else {
      // Stay visibly alive past rank 0's deadline, then enter; rank 0 has
      // already published its arrival, so the plain enter completes.
      const auto until = std::chrono::steady_clock::now() + 600ms;
      while (std::chrono::steady_clock::now() < until) {
        ctx.failure_detector().beat(ctx.acc());
        std::this_thread::sleep_for(10ms);
      }
      barrier.enter(ctx.acc(), ctx.doorbell());
    }
  });

  EXPECT_TRUE(universe.failed_ranks().empty());
}

TEST(FaultInjection, RecvForReportsPeerFailedWhenSenderDies) {
  UniverseConfig cfg = fault_config();
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "test-kill", .occurrence = 1});
  Universe universe(cfg);

  universe.run([&](RankCtx& ctx) {
    Session mpi(ctx);
    std::byte token{0x42};
    if (ctx.rank() == 1) {
      check_ok(mpi.send(0, 0, {&token, 1}));
      ctx.acc().fault_sync_point("test-kill");
      FAIL() << "scripted crash did not fire";
    } else {
      check_ok(mpi.recv(1, 0, {&token, 1}).status());
      // Rank 1 is now dead; a receive it will never match must fail by
      // lease (50 ms), far inside the 5 s deadline.
      std::vector<std::byte> buf(64);
      const auto r = mpi.recv_for(1, /*tag=*/7, buf, 5000ms);
      EXPECT_EQ(r.status().code(), ErrorCode::kPeerFailed);
      EXPECT_EQ(mpi.failed_ranks(), (std::vector<int>{1}));
    }
  });

  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{1}));
}

TEST(FaultInjection, RecvForTimesOutOnSilentLivePeer) {
  UniverseConfig cfg = fault_config();
  cfg.failure_lease = 10000ms;  // the lease can never expire in this test
  Universe universe(cfg);

  universe.run([&](RankCtx& ctx) {
    Session mpi(ctx);
    if (ctx.rank() == 0) {
      std::vector<std::byte> buf(64);
      const auto r = mpi.recv_for(1, 0, buf, 150ms);
      EXPECT_EQ(r.status().code(), ErrorCode::kTimedOut);
    } else {
      // Alive but silent: outlive rank 0's deadline without sending.
      std::this_thread::sleep_for(400ms);
    }
  });

  EXPECT_TRUE(universe.failed_ranks().empty());
}

TEST(FaultInjection, SsendForReportsPeerFailedWhenReceiverDies) {
  UniverseConfig cfg = fault_config();
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "test-kill", .occurrence = 1});
  Universe universe(cfg);

  universe.run([&](RankCtx& ctx) {
    Session mpi(ctx);
    std::byte token{0x42};
    if (ctx.rank() == 1) {
      check_ok(mpi.send(0, 0, {&token, 1}));
      ctx.acc().fault_sync_point("test-kill");
      FAIL() << "scripted crash did not fire";
    } else {
      check_ok(mpi.recv(1, 0, {&token, 1}).status());
      // A synchronous send cannot complete without the (dead) receiver
      // matching it; the detector fails it instead of hanging.
      std::vector<std::byte> data(256, std::byte{0x11});
      const Status s = mpi.ssend_for(1, 0, data, 5000ms);
      EXPECT_EQ(s.code(), ErrorCode::kPeerFailed);
    }
  });

  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{1}));
}

// The acceptance scenario: rank 1 acquires the window lock, is killed at
// the "window-put" sync point (mid-put, lock still held in the pool),
// and rank 0's lock_for — via the heartbeat lease — declares it dead,
// breaks the abandoned bakery ticket, acquires the lock and completes
// its own epoch. Session::failed_ranks() reports exactly {1}.
TEST(FaultInjection, DeadWindowLockHolderIsBrokenAndEpochCompletes) {
  UniverseConfig cfg = fault_config();
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "window-put", .occurrence = 1});
  Universe universe(cfg);

  universe.run([&](RankCtx& ctx) {
    Session mpi(ctx);
    rma::Window win = mpi.create_window("fault_win", 4096);
    std::byte token{0x01};
    std::vector<std::byte> payload(128, std::byte{0xab});

    if (ctx.rank() == 1) {
      win.lock(1);
      // Tell rank 0 the lock is held, then die inside the put.
      check_ok(mpi.send(0, 0, {&token, 1}));
      win.put(1, 0, payload);  // crashes at the "window-put" sync point
      FAIL() << "scripted crash did not fire";
    } else {
      check_ok(mpi.recv(1, 0, {&token, 1}).status());
      // Rank 1 holds the lock and is dead. A plain lock(1) would spin
      // forever; lock_for waits out the lease, breaks the ticket and
      // acquires.
      const Status s = win.lock_for(1, 5000ms);
      ASSERT_TRUE(s.is_ok()) << s.message();
      win.put(1, 0, payload);
      std::vector<std::byte> readback(payload.size());
      win.get(1, 0, readback);
      EXPECT_EQ(readback, payload);
      win.unlock(1);
      EXPECT_EQ(mpi.failed_ranks(), (std::vector<int>{1}));
    }
    // No Window::free(): freeing is collective and rank 1 is dead.
  });

  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{1}));
  EXPECT_TRUE(universe.fault_injector()->rank_crashed(1));
}

}  // namespace
}  // namespace cmpi::runtime
