// Tenant fault domains under chaos: the multi-tenant isolation
// acceptance suite (named *fault_test* so the CI fault matrix reruns it
// under every CMPI_FAULT_SEED).
//
//   * A tenant whose rank crashes mid-send loses only its own traffic:
//     the neighbours complete every message, no survivor's accessor ever
//     touches pool bytes outside its own region (blast-radius counters
//     all zero), and a sentinel object in a neighbour's arena is intact.
//   * Scavenge after the crash is scoped: the victim tenant's survivor
//     reclaims the corpse's state from ITS region only.
//   * Poison injected into one tenant's region surfaces kDataPoisoned to
//     that tenant alone; the neighbour's reads stay clean.
//   * Fault plans target the GLOBAL rank namespace: a plan entry for
//     global rank B + r kills exactly tenant-local rank r of the tenant
//     whose fault_rank_base is B, nobody else.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <latch>
#include <thread>
#include <vector>

#include "core/cmpi.hpp"
#include "cxlsim/fault_injector.hpp"
#include "runtime/pool_service.hpp"
#include "runtime/universe.hpp"

namespace cmpi {
namespace {

using namespace std::chrono_literals;

runtime::PoolServiceConfig chaos_service() {
  runtime::PoolServiceConfig cfg;
  cfg.pool_size = 32_MiB;
  return cfg;
}

runtime::TenantConfig chaos_tenant() {
  runtime::TenantConfig tenant;
  tenant.nodes = 2;
  tenant.ranks_per_node = 1;
  tenant.region_size = 4_MiB;
  tenant.cell_payload = 1_KiB;  // multi-chunk messages at modest sizes
  // Keep the chunked eager path for these sizes (threshold 0 would
  // resolve to one cell and push 2.5 KiB messages into rendezvous,
  // skipping the p2p-chunk-staged kill point).
  tenant.rendezvous_threshold = 64_KiB;
  tenant.failure_lease = std::chrono::milliseconds(50);
  return tenant;
}

std::vector<std::byte> patterned(std::size_t size, int seed) {
  std::vector<std::byte> data(size);
  for (std::size_t i = 0; i < size; ++i) {
    data[i] = static_cast<std::byte>((seed * 131 + i * 7) & 0xFF);
  }
  return data;
}

void expect_zero_blast(runtime::Universe& universe, const char* who) {
  const runtime::Universe::DomainStats blast = universe.domain_stats();
  EXPECT_EQ(blast.writes_outside, 0u) << who;
  EXPECT_EQ(blast.reads_outside, 0u) << who;
}

TEST(TenantIsolation, MidChurnCrashIsContainedToTheVictimTenant) {
  // Three tenants on one device; global ranks: tenant1 = {0,1},
  // tenant2 = {2,3}, tenant3 = {4,5}. The plan kills global rank 3 —
  // tenant2's local rank 1 — after its 4th staged chunk, while every
  // tenant is mid-stream.
  constexpr int kMessages = 24;
  constexpr std::size_t kMsgBytes = 2500;  // 3 chunks at 1 KiB cells
  runtime::PoolServiceConfig cfg = chaos_service();
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 3, .point = "p2p-chunk-staged", .occurrence = 4});
  runtime::PoolService service(cfg);

  runtime::TenantSession t1 = check_ok(service.join(chaos_tenant()));
  runtime::TenantSession t2 = check_ok(service.join(chaos_tenant()));
  runtime::TenantSession t3 = check_ok(service.join(chaos_tenant()));
  ASSERT_EQ(t2.global_rank(1), 3);  // the plan's target

  // All six ranks (three tenants, running concurrently on their own
  // threads) rendezvous here so the crash lands mid-churn for everyone.
  std::latch everyone_streaming(6);
  std::atomic<int> survivor_received{0};
  std::atomic<bool> victim_recv_failed{false};
  std::atomic<bool> victim_scavenged{false};
  std::atomic<bool> sentinel_intact{false};

  const auto survivor_body = [&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    everyone_streaming.arrive_and_wait();
    // Seeded by the SENDER's rank, so both sides agree on the pattern.
    const std::vector<std::byte> payload = patterned(kMsgBytes, 1);
    if (ctx.rank() == 1) {
      for (int m = 0; m < kMessages; ++m) {
        check_ok(mpi.send(0, m, payload));
      }
    } else {
      std::vector<std::byte> buf(kMsgBytes);
      for (int m = 0; m < kMessages; ++m) {
        const auto r = mpi.recv_for(1, m, buf, 10000ms);
        ASSERT_TRUE(r.is_ok()) << r.status().message();
        EXPECT_EQ(buf, payload);
        ++survivor_received;
      }
    }
    ctx.barrier();
  };

  std::thread run1([&] {
    t1.universe().run([&](runtime::RankCtx& ctx) {
      // Sentinel in tenant1's arena: the victim's crash, recovery and
      // scavenge must never touch it.
      arena::ObjectHandle sentinel{};
      const std::vector<std::byte> mark = patterned(4096, 99);
      if (ctx.rank() == 0) {
        sentinel = check_ok(ctx.arena().create("sentinel", 4096));
        ctx.acc().bulk_write(sentinel.pool_offset, mark);
      }
      survivor_body(ctx);
      if (ctx.rank() == 0) {
        std::vector<std::byte> check(4096);
        ctx.acc().bulk_read(sentinel.pool_offset, check);
        sentinel_intact = check == mark;
      }
    });
  });
  std::thread run3([&] {
    t3.universe().run(survivor_body);
  });
  std::thread run2([&] {
    t2.universe().run([&](runtime::RankCtx& ctx) {
      Session mpi(ctx);
      ctx.barrier();
      everyone_streaming.arrive_and_wait();
      const std::vector<std::byte> payload = patterned(kMsgBytes, 7);
      if (ctx.rank() == 1) {
        // Dies at the 4th staged chunk: message 0 is durable, message 1
        // is forever partial.
        check_ok(mpi.send(0, 0, payload));
        (void)mpi.send(0, 1, payload);
        FAIL() << "scripted mid-send crash did not fire";
      } else {
        std::vector<std::byte> buf(kMsgBytes);
        check_ok(mpi.recv_for(1, 0, buf, 10000ms).status());
        EXPECT_EQ(buf, payload);
        // Message 1 can never complete; the lease convicts the sender.
        const auto r = mpi.recv_for(1, 1, buf, 10000ms);
        victim_recv_failed =
            !r.is_ok() && r.status().code() == ErrorCode::kPeerFailed;
        // Region-scoped recovery: this survivor scavenges the corpse
        // from the tenant's OWN region.
        const auto rep = mpi.scavenge(1);
        victim_scavenged = rep.is_ok() && rep.value().pool.performed;
      }
    });
  });
  run1.join();
  run2.join();
  run3.join();

  // Survivor tenants completed every message.
  EXPECT_EQ(survivor_received.load(), 2 * kMessages);
  EXPECT_TRUE(sentinel_intact.load());
  // The victim saw its peer die and reclaimed it — inside its region.
  EXPECT_TRUE(victim_recv_failed.load());
  EXPECT_TRUE(victim_scavenged.load());
  // Failure verdicts are tenant-local...
  EXPECT_TRUE(t1.universe().failed_ranks().empty());
  EXPECT_EQ(t2.universe().failed_ranks(), (std::vector<int>{1}));
  EXPECT_TRUE(t3.universe().failed_ranks().empty());
  EXPECT_EQ(t2.universe().recovery_stats().scavenges, 1u);
  // ...and the blast-radius fences prove no tenant ever left its region:
  // crash handling, recovery and all survivor traffic included.
  expect_zero_blast(t1.universe(), "tenant 1");
  expect_zero_blast(t2.universe(), "tenant 2 (victim)");
  expect_zero_blast(t3.universe(), "tenant 3");
}

TEST(TenantIsolation, RuntimePoisonSurfacesOnlyInThePoisonedTenant) {
  runtime::PoolServiceConfig cfg = chaos_service();
  // A plan entry that can never fire: installs the injector (runtime
  // poison needs one) without scripting any fault.
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1000, .point = "tenant-poison-test-unused", .occurrence = 1});
  runtime::PoolService service(cfg);
  runtime::TenantSession healthy = check_ok(service.join(chaos_tenant()));
  runtime::TenantSession victim = check_ok(service.join(chaos_tenant()));

  // Epoch 1: the victim parks an object and reports where it lives.
  std::atomic<std::uint64_t> victim_object{0};
  victim.universe().run([&](runtime::RankCtx& ctx) {
    ctx.barrier();
    if (ctx.rank() == 0) {
      const auto obj = check_ok(ctx.arena().create("poison_target", 4096));
      std::vector<std::byte> page(4096, std::byte{0x11});
      ctx.acc().bulk_write(obj.pool_offset, page);
      victim_object = obj.pool_offset;
    }
    ctx.barrier();
  });
  ASSERT_GE(victim_object.load(), victim.region_base());

  // Media fault lands inside the victim's region only.
  service.fault_injector()->poison(victim_object.load(), 4096);

  // Epoch 2: the victim observes kDataPoisoned...
  std::atomic<bool> poison_surfaced{false};
  victim.universe().run([&](runtime::RankCtx& ctx) {
    if (ctx.rank() != 0) {
      return;
    }
    std::vector<std::byte> buf(4096);
    ctx.acc().bulk_read(victim_object.load(), buf);
    const Status s = ctx.acc().take_poison_status("victim read");
    poison_surfaced = s.code() == ErrorCode::kDataPoisoned;
  });
  EXPECT_TRUE(poison_surfaced.load());

  // ...while the healthy tenant's identical workload stays clean.
  healthy.universe().run([&](runtime::RankCtx& ctx) {
    ctx.barrier();
    if (ctx.rank() == 0) {
      const auto obj = check_ok(ctx.arena().create("clean_obj", 4096));
      std::vector<std::byte> page(4096, std::byte{0x22});
      ctx.acc().bulk_write(obj.pool_offset, page);
      std::vector<std::byte> back(4096);
      ctx.acc().bulk_read(obj.pool_offset, back);
      EXPECT_EQ(back, page);
      EXPECT_TRUE(ctx.acc().take_poison_status("healthy read").is_ok());
    }
    ctx.barrier();
  });
  expect_zero_blast(healthy.universe(), "healthy tenant");
  expect_zero_blast(victim.universe(), "poisoned tenant");
}

TEST(TenantIsolation, FaultPlanAddressesGlobalRanks) {
  // Global rank 2 = tenant2's local rank 0. Its very first pool access
  // crashes; tenant1's local rank 0 — same LOCAL id — must be untouched.
  runtime::PoolServiceConfig cfg = chaos_service();
  cfg.fault_plan.crash_at_access.push_back({.rank = 2, .nth = 1});
  runtime::PoolService service(cfg);
  runtime::TenantSession t1 = check_ok(service.join(chaos_tenant()));
  runtime::TenantSession t2 = check_ok(service.join(chaos_tenant()));

  std::atomic<bool> t1_rank0_ran{false};
  std::atomic<bool> t2_rank0_ran{false};
  t1.universe().run([&](runtime::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      check_ok(ctx.arena().create("t1_obj", 256).status());
      t1_rank0_ran = true;
    }
  });
  t2.universe().run([&](runtime::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      check_ok(ctx.arena().create("t2_obj", 256).status());
      t2_rank0_ran = true;  // unreachable: first access crashes
    }
  });

  EXPECT_TRUE(t1_rank0_ran.load());
  EXPECT_FALSE(t2_rank0_ran.load());
  EXPECT_TRUE(t1.universe().failed_ranks().empty());
  EXPECT_EQ(t2.universe().failed_ranks(), (std::vector<int>{0}));
}

}  // namespace
}  // namespace cmpi
