#include "runtime/topology.hpp"

#include <gtest/gtest.h>

namespace cmpi::runtime {
namespace {

TEST(PodTopology, RankRoundTrips) {
  PodTopology topo;
  topo.pods = 4;
  topo.ranks_per_pod = 8;
  topo.router_local = 3;
  ASSERT_TRUE(topo.validate().is_ok());
  EXPECT_EQ(topo.nranks(), 32);
  for (int g = 0; g < topo.nranks(); ++g) {
    const int p = topo.pod_of(g);
    const int l = topo.local_of(g);
    EXPECT_GE(p, 0);
    EXPECT_LT(p, topo.pods);
    EXPECT_GE(l, 0);
    EXPECT_LT(l, topo.ranks_per_pod);
    EXPECT_EQ(topo.global_rank(p, l), g);
    EXPECT_TRUE(topo.contains(g));
  }
  for (int p = 0; p < topo.pods; ++p) {
    for (int l = 0; l < topo.ranks_per_pod; ++l) {
      const int g = topo.global_rank(p, l);
      EXPECT_EQ(topo.pod_of(g), p);
      EXPECT_EQ(topo.local_of(g), l);
    }
  }
}

TEST(PodTopology, RoutersAndPodMembership) {
  PodTopology topo;
  topo.pods = 3;
  topo.ranks_per_pod = 5;
  topo.router_local = 2;
  ASSERT_TRUE(topo.validate().is_ok());
  for (int p = 0; p < topo.pods; ++p) {
    const int r = topo.router_of(p);
    EXPECT_EQ(topo.pod_of(r), p);
    EXPECT_EQ(topo.local_of(r), 2);
    EXPECT_TRUE(topo.is_router(r));
  }
  int routers = 0;
  for (int g = 0; g < topo.nranks(); ++g) {
    routers += topo.is_router(g) ? 1 : 0;
  }
  EXPECT_EQ(routers, topo.pods);
  EXPECT_TRUE(topo.same_pod(0, 4));
  EXPECT_FALSE(topo.same_pod(4, 5));
  EXPECT_FALSE(topo.contains(-1));
  EXPECT_FALSE(topo.contains(topo.nranks()));
}

TEST(PodTopology, SinglePodDegenerateCase) {
  PodTopology topo;  // defaults: 1 pod, 1 rank
  EXPECT_TRUE(topo.validate().is_ok());
  topo.ranks_per_pod = 16;
  ASSERT_TRUE(topo.validate().is_ok());
  for (int g = 0; g < 16; ++g) {
    EXPECT_EQ(topo.pod_of(g), 0);
    EXPECT_EQ(topo.local_of(g), g);
    EXPECT_TRUE(topo.same_pod(g, 0));
  }
  EXPECT_EQ(topo.router_of(0), 0);
}

TEST(PodTopology, ValidateRejectsBadGeometry) {
  PodTopology topo;
  topo.pods = 0;
  EXPECT_EQ(topo.validate().code(), ErrorCode::kInvalidArgument);
  topo.pods = 2;
  topo.ranks_per_pod = 0;
  EXPECT_EQ(topo.validate().code(), ErrorCode::kInvalidArgument);
  topo.ranks_per_pod = 4;
  topo.router_local = 4;
  EXPECT_EQ(topo.validate().code(), ErrorCode::kInvalidArgument);
  topo.router_local = -1;
  EXPECT_EQ(topo.validate().code(), ErrorCode::kInvalidArgument);
  topo.router_local = 3;
  EXPECT_TRUE(topo.validate().is_ok());
}

}  // namespace
}  // namespace cmpi::runtime
