// Regression test for unsynchronized stats reads: a monitoring thread
// concurrently polls Universe::recovery_stats(), copies a live
// Endpoint's CommStats, and takes registry snapshots (which walk every
// registered provider, including the endpoints' own) while rank threads
// stream messages. All counters are atomics and the provider walk is
// internally locked, so this must be TSan-clean; run under the TSan CI
// job (label runtime_test) it guards against reintroducing plain-field
// stats.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/obs.hpp"
#include "p2p/endpoint.hpp"

namespace cmpi::runtime {
namespace {

TEST(StatsRace, ConcurrentStatsReadersSeeConsistentCounters) {
  obs::Config obs_config;
  obs_config.metrics = true;
  obs::configure(obs_config);
  const obs::MetricsSnapshot before =
      obs::MetricsRegistry::instance().snapshot();

  UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = 4_KiB;
  Universe universe(cfg);

  // The poller borrows rank 0's endpoint under a mutex; the owning rank
  // nulls the pointer (same mutex) before the endpoint is destroyed.
  std::mutex ep_mutex;
  p2p::Endpoint* shared_ep = nullptr;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> polls{0};

  std::thread poller([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const RecoveryStats rs = universe.recovery_stats();
      (void)rs;
      const obs::MetricsSnapshot snap =
          obs::MetricsRegistry::instance().snapshot();
      (void)snap;
      {
        std::lock_guard<std::mutex> lock(ep_mutex);
        if (shared_ep != nullptr) {
          // The copy constructor performs the relaxed per-field loads —
          // this is the read that raced before CommStats went atomic.
          const p2p::CommStats copy = shared_ep->stats();
          (void)copy;
        }
      }
      polls.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr int kMessages = 200;
  universe.run([&](RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    if (ctx.rank() == 0) {
      std::lock_guard<std::mutex> lock(ep_mutex);
      shared_ep = &ep;
    }
    std::vector<std::byte> payload(1024, std::byte{0x3C});
    for (int i = 0; i < kMessages; ++i) {
      if (ctx.rank() == 0) {
        check_ok(ep.send(1, i, payload));
      } else {
        std::vector<std::byte> buf(payload.size());
        check_ok(ep.recv(0, i, buf));
      }
    }
    ctx.barrier();  // both sides quiesce before the endpoint dies
    if (ctx.rank() == 0) {
      std::lock_guard<std::mutex> lock(ep_mutex);
      shared_ep = nullptr;
    }
  });

  stop.store(true, std::memory_order_release);
  poller.join();
  EXPECT_GT(polls.load(), 0u);

  // After quiescence the registry's totals reflect the run: rank 0 sent
  // kMessages, rank 1 received them (snapshot deltas — other tests in
  // this binary may have contributed to the same families).
  const obs::MetricsSnapshot after =
      obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(after.counter("p2p.messages_sent") -
                before.counter("p2p.messages_sent"),
            static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(after.counter("p2p.messages_received") -
                before.counter("p2p.messages_received"),
            static_cast<std::uint64_t>(kMessages));

  obs::configure(obs::Config{});
}

}  // namespace
}  // namespace cmpi::runtime
