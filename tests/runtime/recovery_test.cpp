// Crash → scavenge → respawn: the pool-recovery acceptance suite.
//
//   * A rank killed mid-send leaves arena objects, half-staged ring cells
//     and (possibly) a standing bakery ticket in the pool. Survivors run
//     Session::scavenge: 100% of the corpse's arena bytes return to the
//     free list, its inbound cells are tombstoned, and the on-pool ledger
//     makes the pool-global half exactly-once across survivors.
//   * Universe::respawn restarts the rank under a bumped incarnation; the
//     stale cells its previous life published are fenced at the endpoint
//     match path and never delivered.
//   * Payload integrity end to end: a poisoned or bit-flipped cell fails
//     the per-cell CRC (or surfaces a media error), the receiver NAKs, the
//     sender retransmits from its staging copy, and the receive completes
//     clean — with bounded retries surfacing kDataPoisoned when the damage
//     is persistent.
//   * A dead host's dirty cache lines are DROPPED, never written back.
//
// The seed-parameterized fuzz at the bottom runs the full
// crash → scavenge → respawn cycle under random victims/schedules; CI's
// fault matrix adds CMPI_FAULT_SEED on top of the built-in seeds.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cmpi.hpp"
#include "cxlsim/fault_injector.hpp"
#include "queue/spsc_ring.hpp"
#include "runtime/pool_recovery.hpp"
#include "runtime/universe.hpp"

namespace cmpi {
namespace {

using namespace std::chrono_literals;

runtime::UniverseConfig recovery_config(unsigned nodes = 2,
                                        unsigned per_node = 1) {
  runtime::UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 32_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = 4_KiB;  // multi-chunk messages at modest sizes
  cfg.failure_lease = 50ms;  // deadlines below are 100x longer
  return cfg;
}

/// Spin (wall clock) until the injector records `rank`'s scripted crash.
bool wait_for_crash(runtime::RankCtx& ctx, int rank,
                    std::chrono::milliseconds limit = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  const cxlsim::FaultInjector* fi = ctx.device().fault_injector();
  while (std::chrono::steady_clock::now() < deadline) {
    if (fi != nullptr && fi->rank_crashed(rank)) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

std::vector<std::byte> patterned(std::size_t size, std::uint64_t seed) {
  std::vector<std::byte> data(size);
  Rng rng(seed);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(256));
  }
  return data;
}

// ---------------------------------------------------------------------
// Scavenge: arena bytes, ring cells, exactly-once ledger.

TEST(PoolRecoveryScavenge, MidSendCrashSurvivorsReclaimEverything) {
  runtime::UniverseConfig cfg = recovery_config(2, 2);
  // This test scripts its crash at eager chunk boundaries; keep message B
  // on the chunked path (the rendezvous-path crashes have their own suite
  // in rendezvous_fault_test).
  cfg.rendezvous_threshold = 64_KiB;
  // Rank 3 dies after staging chunk 2 of its second message: message A
  // (1 chunk, to rank 0) is durable, message B (3 chunks, to rank 1) is
  // forever partial.
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 3, .point = "p2p-chunk-staged", .occurrence = 3});
  runtime::Universe universe(cfg);

  constexpr int kVictim = 3;
  const std::vector<std::byte> msg_a = patterned(256, 7);
  const std::vector<std::byte> msg_b = patterned(10000, 8);
  std::atomic<std::uint64_t> free_before{0};

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 1) {
      free_before = ctx.arena().free_bytes();
    }
    ctx.barrier();
    if (ctx.rank() == kVictim) {
      check_ok(ctx.arena().create("victim_a", 4096).status());
      check_ok(ctx.arena().create("victim_b", 8192).status());
    }
    ctx.barrier();

    switch (ctx.rank()) {
      case kVictim: {
        check_ok(mpi.send(0, 0, msg_a));
        (void)mpi.send(1, 1, msg_b);  // crashes at chunk 2
        FAIL() << "scripted mid-send crash did not fire";
        break;
      }
      case 0: {
        // The fully-staged message survives the sender's death.
        std::vector<std::byte> buf(msg_a.size());
        const auto r = mpi.recv_for(kVictim, 0, buf, 10000ms);
        ASSERT_TRUE(r.is_ok()) << r.status().message();
        EXPECT_EQ(buf, msg_a);
        ASSERT_TRUE(wait_for_crash(ctx, kVictim));
        // Wait for rank 1's scavenge, then run our own: the pool-global
        // half must observe the ledger and do nothing (exactly-once).
        std::byte token{};
        check_ok(mpi.recv_for(1, 5, {&token, 1}, 10000ms).status());
        const auto again = mpi.scavenge(kVictim);
        ASSERT_TRUE(again.is_ok()) << again.status().message();
        EXPECT_FALSE(again.value().pool.performed);
        EXPECT_EQ(again.value().pool.epoch, 1u);
        break;
      }
      case 1: {
        ASSERT_TRUE(wait_for_crash(ctx, kVictim));
        const auto rep = mpi.scavenge(kVictim);
        ASSERT_TRUE(rep.is_ok()) << rep.status().message();
        const Session::RecoveryReport& report = rep.value();
        EXPECT_TRUE(report.pool.performed);
        EXPECT_EQ(report.pool.epoch, 1u);
        // 100% of the corpse's arena state: both owned objects, all bytes.
        EXPECT_EQ(report.pool.arena_slots_reclaimed, 2u);
        EXPECT_EQ(report.pool.arena_bytes_reclaimed, 4096u + 8192u);
        EXPECT_EQ(ctx.arena().free_bytes(), free_before.load());
        // The two staged-but-undeliverable chunks of message B.
        EXPECT_EQ(report.endpoint.cells_drained, 2u);
        EXPECT_EQ(report.endpoint.cells_torn, 0u);
        std::byte token{0x1};
        check_ok(mpi.send(0, 5, {&token, 1}));
        break;
      }
      default:
        ASSERT_TRUE(wait_for_crash(ctx, kVictim));
        break;
    }
  });

  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{kVictim}));
  const runtime::RecoveryStats stats = universe.recovery_stats();
  EXPECT_EQ(stats.scavenges, 1u);
  EXPECT_EQ(stats.ring_cells_tombstoned, 2u);
}

TEST(PoolRecoveryScavenge, DeadLockHolderTicketIsBroken) {
  runtime::UniverseConfig cfg = recovery_config();
  // Rank 1's first bakery acquisition is the arena lock inside its
  // create(): it dies holding the lock, ticket standing.
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "lock-acquired", .occurrence = 1});
  runtime::Universe universe(cfg);

  universe.run([&](runtime::RankCtx& ctx) {
    ctx.barrier();
    if (ctx.rank() == 1) {
      (void)ctx.arena().create("doomed", 4096);
      FAIL() << "scripted crash inside create() did not fire";
      return;
    }
    ASSERT_TRUE(wait_for_crash(ctx, 1));
    runtime::PoolRecovery recovery(ctx);
    const auto rep = recovery.scavenge(1, 5000ms);
    ASSERT_TRUE(rep.is_ok()) << rep.status().message();
    EXPECT_TRUE(rep.value().performed);
    EXPECT_EQ(rep.value().lock_tickets_broken, 1u);
    // Death fired before the slot was written: nothing to free.
    EXPECT_EQ(rep.value().arena_slots_reclaimed, 0u);
    // The lock is usable again — a plain create must go straight through.
    check_ok(ctx.arena().create("after_scavenge", 64).status());
    // Exactly-once, observed from the same survivor.
    const auto again = recovery.scavenge(1, 5000ms);
    ASSERT_TRUE(again.is_ok()) << again.status().message();
    EXPECT_FALSE(again.value().performed);
    EXPECT_EQ(recovery.scavenged_through(1), 1u);
  });

  EXPECT_EQ(universe.recovery_stats().scavenges, 1u);
}

// ---------------------------------------------------------------------
// Respawn: incarnation-fenced rejoin.

TEST(PoolRecoveryRespawn, StaleCellsAreFencedAndTheRankRejoins) {
  runtime::UniverseConfig cfg = recovery_config();
  // Crash scripted at eager chunk boundaries (see the rendezvous fault
  // suite for the large-message analogue).
  cfg.rendezvous_threshold = 64_KiB;
  // Epoch 1: rank 1 fully stages message A (1 chunk), dies after chunk 2
  // of message B — three incarnation-0 cells sit unconsumed in the ring.
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "p2p-chunk-staged", .occurrence = 3});
  runtime::Universe universe(cfg);

  const std::vector<std::byte> msg_a = patterned(300, 21);
  const std::vector<std::byte> msg_b = patterned(10000, 22);
  const std::vector<std::byte> msg_c = patterned(500, 23);
  const std::vector<std::byte> msg_d = patterned(64, 24);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 1) {
      check_ok(mpi.send(0, 0, msg_a));
      (void)mpi.send(0, 1, msg_b);  // crashes at chunk 2
      FAIL() << "scripted mid-send crash did not fire";
    } else {
      // Deliberately no scavenge and no receive: the stale cells stay in
      // the ring so the NEXT epoch has to fence them.
      ASSERT_TRUE(wait_for_crash(ctx, 1));
    }
  });
  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{1}));

  universe.respawn(1);
  EXPECT_EQ(universe.incarnation(1), 1u);
  EXPECT_TRUE(universe.failed_ranks().empty());

  // Epoch 2: the respawned incarnation talks to the old survivor through
  // the same rings. The survivor's first drain walks message A (whole)
  // and message B (partial) — both stamped incarnation 0 — and discards
  // them; message C, stamped incarnation 1, is delivered intact.
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 1) {
      check_ok(mpi.send(0, 2, msg_c));
      std::vector<std::byte> buf(msg_d.size());
      const auto r = mpi.recv_for(0, 3, buf, 10000ms);
      ASSERT_TRUE(r.is_ok()) << r.status().message();
      EXPECT_EQ(buf, msg_d);
    } else {
      std::vector<std::byte> buf(msg_c.size());
      const auto r = mpi.recv_for(1, 2, buf, 10000ms);
      ASSERT_TRUE(r.is_ok()) << r.status().message();
      EXPECT_EQ(buf, msg_c);
      EXPECT_EQ(r.value().bytes, msg_c.size());
      check_ok(mpi.send(1, 3, msg_d));
    }
  });

  const runtime::RecoveryStats stats = universe.recovery_stats();
  EXPECT_EQ(stats.stale_fenced, 2u);  // message A + message B (partial)
  EXPECT_EQ(stats.scavenges, 0u);
  EXPECT_TRUE(universe.failed_ranks().empty());
}

// ---------------------------------------------------------------------
// End-to-end payload integrity: NAK + retransmission.

TEST(PayloadIntegrity, PoisonedCellIsRetransmittedTransparently) {
  runtime::UniverseConfig cfg = recovery_config();
  // Install the injector with a crash that can never fire; the poison is
  // added at runtime once the ring addresses are known.
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 0, .point = "recovery-test-never", .occurrence = 1});
  runtime::Universe universe(cfg);

  const std::vector<std::byte> payload = patterned(1000, 31);
  const std::vector<std::byte> reply = patterned(8, 32);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    if (ctx.rank() == 0) {
      // Poison the first cell's payload in the rank1→rank0 ring: the
      // first delivery attempt surfaces a media error, the retransmission
      // lands in the next (clean) cell.
      const std::uint64_t cell0_payload =
          mpi.endpoint().debug_ring_base(/*receiver=*/0, /*sender=*/1) +
          queue::SpscRing::kCellsOffset + sizeof(queue::CellHeader);
      ctx.device().fault_injector()->poison(cell0_payload, 64);
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      std::vector<std::byte> buf(payload.size());
      const auto r = mpi.recv_for(1, 3, buf, 10000ms);
      ASSERT_TRUE(r.is_ok()) << r.status().message();
      EXPECT_EQ(buf, payload);
      EXPECT_EQ(r.value().bytes, payload.size());
      check_ok(mpi.send(1, 4, reply));
    } else {
      check_ok(mpi.send(0, 3, payload));
      // Keep pumping progress so the NAK is serviced and the staging copy
      // is resent; the reply only arrives after the clean delivery.
      std::vector<std::byte> buf(reply.size());
      const auto r = mpi.recv_for(0, 4, buf, 10000ms);
      ASSERT_TRUE(r.is_ok()) << r.status().message();
      EXPECT_EQ(buf, reply);
    }
  });

  const runtime::RecoveryStats stats = universe.recovery_stats();
  EXPECT_EQ(stats.naks_sent, 1u);
  EXPECT_EQ(stats.retransmits, 1u);
  EXPECT_EQ(stats.retransmit_rejects, 0u);
  EXPECT_EQ(stats.crc_failures, 0u);  // media error, not bit rot
  EXPECT_TRUE(universe.failed_ranks().empty());
}

TEST(PayloadIntegrity, BitFlippedCellFailsCrcAndIsRetransmitted) {
  // No fault plan at all: the CRC path is always armed. The receiver
  // flips bytes of the staged payload directly in the pool (bit rot /
  // torn write between staging and consumption).
  runtime::Universe universe(recovery_config());
  const std::vector<std::byte> payload = patterned(1000, 41);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 0) {
      const std::uint64_t ring_base =
          mpi.endpoint().debug_ring_base(/*receiver=*/0, /*sender=*/1);
      // Wait (wall clock) until the sender has published cell 0...
      const auto deadline = std::chrono::steady_clock::now() + 10s;
      while (ctx.acc()
                 .peek_flag(ring_base + queue::SpscRing::kTailOffset)
                 .value == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "sender never staged the message";
        std::this_thread::sleep_for(1ms);
      }
      // ...then clobber the first 8 payload bytes before consuming them.
      ctx.acc().nt_store_u64(ring_base + queue::SpscRing::kCellsOffset +
                                 sizeof(queue::CellHeader),
                             0xDEADBEEFCAFEF00DULL);
      std::vector<std::byte> buf(payload.size());
      const auto r = mpi.recv_for(1, 3, buf, 10000ms);
      ASSERT_TRUE(r.is_ok()) << r.status().message();
      EXPECT_EQ(buf, payload);
      std::byte token{0x7};
      check_ok(mpi.send(1, 4, {&token, 1}));
    } else {
      check_ok(mpi.send(0, 3, payload));
      std::byte token{};
      check_ok(mpi.recv_for(0, 4, {&token, 1}, 10000ms).status());
    }
  });

  const runtime::RecoveryStats stats = universe.recovery_stats();
  EXPECT_EQ(stats.crc_failures, 1u);
  EXPECT_EQ(stats.naks_sent, 1u);
  EXPECT_EQ(stats.retransmits, 1u);
}

TEST(PayloadIntegrity, PersistentDamageExhaustsRetriesAndSurfaces) {
  runtime::UniverseConfig cfg = recovery_config();
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 0, .point = "recovery-test-never", .occurrence = 1});
  runtime::Universe universe(cfg);

  const std::vector<std::byte> payload = patterned(1000, 51);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    if (ctx.rank() == 0) {
      // Poison EVERY cell of the inbound ring: the original delivery and
      // all retransmissions are damaged; the bounded retry budget must
      // surface kDataPoisoned instead of looping forever.
      const std::uint64_t ring_base =
          mpi.endpoint().debug_ring_base(/*receiver=*/0, /*sender=*/1);
      const std::size_t cells_bytes =
          ctx.config().ring_cells *
          (sizeof(queue::CellHeader) + mpi.endpoint().cell_payload());
      ctx.device().fault_injector()->poison(
          ring_base + queue::SpscRing::kCellsOffset, cells_bytes);
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      std::vector<std::byte> buf(payload.size());
      const auto r = mpi.recv_for(1, 3, buf, 10000ms);
      EXPECT_EQ(r.status().code(), ErrorCode::kDataPoisoned)
          << r.status().message();
      std::byte token{0x3};
      check_ok(mpi.send(1, 4, {&token, 1}));
    } else {
      check_ok(mpi.send(0, 3, payload));
      std::byte token{};
      check_ok(mpi.recv_for(0, 4, {&token, 1}, 10000ms).status());
    }
  });

  const runtime::RecoveryStats stats = universe.recovery_stats();
  EXPECT_EQ(stats.naks_sent,
            static_cast<std::uint64_t>(p2p::Endpoint::kMaxRetransmits));
  EXPECT_EQ(stats.retransmits,
            static_cast<std::uint64_t>(p2p::Endpoint::kMaxRetransmits));
  EXPECT_EQ(stats.retransmit_rejects, 0u);
}

// ---------------------------------------------------------------------
// S1 regression: a dead host's dirty lines are dropped, never flushed.

TEST(DeadNodeTeardown, DirtyLinesAreDiscardedNotWrittenBack) {
  runtime::UniverseConfig cfg = recovery_config();
  // The victim deliberately leaves an unflushed cached store behind; the
  // coherence checker would (correctly) flag that as a protocol gap, but
  // this test is about teardown semantics, not discipline.
  cfg.coherence_check = runtime::CoherenceChecking::kDisabled;
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "test-kill", .occurrence = 1});
  runtime::Universe universe(cfg);

  constexpr std::uint64_t kBaseline = 0x5151515151515151ULL;
  std::atomic<std::uint64_t> probe_offset{0};

  universe.run([&](runtime::RankCtx& ctx) {
    if (ctx.rank() == 0) {
      const auto obj = check_ok(ctx.arena().create(
          "dirty_probe", 4096, arena::Ownership::kShared));
      ctx.acc().nt_store_u64(obj.pool_offset, kBaseline);
      probe_offset = obj.pool_offset;
      ctx.barrier();
      ASSERT_TRUE(wait_for_crash(ctx, 1));
    } else {
      ctx.barrier();
      const auto obj = check_ok(ctx.arena().open("dirty_probe"));
      // Cached store, never flushed: the line is dirty ONLY in node 1's
      // private cache when the host dies.
      const std::vector<std::byte> sentinel(64, std::byte{0xEE});
      ctx.acc().store(obj.pool_offset, sentinel);
      ctx.acc().fault_sync_point("test-kill");
      FAIL() << "scripted crash did not fire";
    }
  });
  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{1}));

  // Read the pool through a fresh cache: had teardown written the dead
  // node's dirty lines back, the sentinel would have leaked into the
  // device. It must still hold the baseline.
  simtime::VClock clock;
  cxlsim::CacheSim cache(universe.device(), {.sets = 64, .ways = 4});
  cxlsim::Accessor acc(universe.device(), cache, clock);
  EXPECT_EQ(acc.nt_load_u64(probe_offset.load()), kBaseline)
      << "dead node's dirty line was written back into the pool";
}

// ---------------------------------------------------------------------
// Seeded crash → scavenge → respawn fuzz (CI fault matrix entry point).

std::uint64_t fuzz_seed(std::uint64_t param) {
  if (const char* env = std::getenv("CMPI_FAULT_SEED")) {
    return param + std::strtoull(env, nullptr, 10);
  }
  return param;
}

std::vector<std::byte> fuzz_payload(std::uint64_t seed, int rank, int tag,
                                    std::size_t size) {
  return patterned(size, seed ^ (static_cast<std::uint64_t>(rank) << 32) ^
                             static_cast<std::uint64_t>(tag));
}

class RecoveryFuzz : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, RecoveryFuzz,
                         ::testing::Values(11u, 222u, 3333u));

TEST_P(RecoveryFuzz, CrashScavengeRespawnCycleSurvives) {
  const std::uint64_t seed = fuzz_seed(GetParam());
  Rng rng(seed);
  constexpr int kRanks = 4;
  const int victim =
      static_cast<int>(rng.next_below(static_cast<std::uint64_t>(kRanks)));
  // Single-chunk messages the victim streams before dying mid-plan.
  const int per_survivor = 1 + static_cast<int>(rng.next_below(3));
  const std::size_t msg_size = 1 + rng.next_below(4096);
  const int total_chunks = per_survivor * (kRanks - 1);
  const std::uint64_t crash_occurrence =
      1 + rng.next_below(static_cast<std::uint64_t>(total_chunks));

  runtime::UniverseConfig cfg = recovery_config(2, 2);
  cfg.pool_size = 64_MiB;
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = victim,
       .point = "p2p-chunk-staged",
       .occurrence = crash_occurrence});
  runtime::Universe universe(cfg);

  std::vector<int> survivors;
  for (int r = 0; r < kRanks; ++r) {
    if (r != victim) {
      survivors.push_back(r);
    }
  }
  std::atomic<int> performed_count{0};

  // Epoch 1: the victim dies at a seeded point of its send plan; every
  // survivor scavenges concurrently (the ledger keeps the pool-global
  // half exactly-once), then survivor ring traffic proves the pool works.
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const int me = ctx.rank();
    ctx.barrier();
    if (me == victim) {
      for (const int s : survivors) {
        for (int k = 0; k < per_survivor; ++k) {
          (void)mpi.send(s, k, fuzz_payload(seed, s, k, msg_size));
        }
      }
      FAIL() << "victim " << victim << " outlived its crash schedule";
      return;
    }
    ASSERT_TRUE(wait_for_crash(ctx, victim));
    const auto rep = mpi.scavenge(victim, 5000ms);
    ASSERT_TRUE(rep.is_ok()) << rep.status().message();
    if (rep.value().pool.performed) {
      performed_count.fetch_add(1);
    }
    // Survivor ring: each sends to the next survivor, receives from the
    // previous, through the deadline-aware paths (no hangs, no stale
    // leakage from the scavenged corpse rings).
    const std::size_t my_idx = static_cast<std::size_t>(
        std::find(survivors.begin(), survivors.end(), me) -
        survivors.begin());
    const int next = survivors[(my_idx + 1) % survivors.size()];
    const int prev =
        survivors[(my_idx + survivors.size() - 1) % survivors.size()];
    check_ok(mpi.send_for(next, 500, fuzz_payload(seed, me, 500, 2048),
                          10000ms));
    std::vector<std::byte> in(2048);
    const auto r = mpi.recv_for(prev, 500, in, 10000ms);
    ASSERT_TRUE(r.is_ok()) << r.status().message();
    EXPECT_EQ(in, fuzz_payload(seed, prev, 500, 2048));
  });

  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{victim}));
  EXPECT_EQ(performed_count.load(), 1);
  EXPECT_EQ(universe.recovery_stats().scavenges, 1u);

  // Epoch 2: respawn and full bidirectional traffic with every survivor.
  universe.respawn(victim);
  EXPECT_EQ(universe.incarnation(victim), 1u);
  EXPECT_TRUE(universe.failed_ranks().empty());

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const int me = ctx.rank();
    ctx.barrier();
    if (me == victim) {
      for (const int s : survivors) {
        check_ok(mpi.send_for(s, 600, fuzz_payload(seed, s, 600, msg_size),
                              10000ms));
      }
      for (const int s : survivors) {
        std::vector<std::byte> in(msg_size);
        const auto r = mpi.recv_for(s, 700, in, 10000ms);
        ASSERT_TRUE(r.is_ok()) << r.status().message();
        EXPECT_EQ(in, fuzz_payload(seed, s, 700, msg_size));
      }
    } else {
      std::vector<std::byte> in(msg_size);
      const auto r = mpi.recv_for(victim, 600, in, 10000ms);
      ASSERT_TRUE(r.is_ok()) << r.status().message();
      EXPECT_EQ(in, fuzz_payload(seed, me, 600, msg_size));
      check_ok(mpi.send_for(victim, 700,
                            fuzz_payload(seed, me, 700, msg_size), 10000ms));
    }
  });

  EXPECT_TRUE(universe.failed_ranks().empty());
  EXPECT_EQ(universe.recovery_stats().scavenges, 1u);
}

}  // namespace
}  // namespace cmpi
