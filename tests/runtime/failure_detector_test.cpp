// Lease-boundary semantics of the heartbeat failure detector, pinned with
// a fake wall clock (the debug_set_clock seam — the edge cannot be hit
// deterministically against std::chrono::steady_clock):
//
//   * a heartbeat observed EXACTLY at the lease edge is still alive:
//     conviction requires strictly more than a full lease of silence,
//   * a counter advance observed inside the lease restarts it,
//   * verdicts are sticky: a convicted peer stays dead even if its
//     counter later advances (its pool state may already be scavenged).
#include "runtime/failure_detector.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <vector>

#include "common/units.hpp"
#include "cxlsim/accessor.hpp"
#include "cxlsim/cache_sim.hpp"
#include "cxlsim/dax_device.hpp"
#include "simtime/vclock.hpp"

namespace cmpi::runtime {
namespace {

using namespace std::chrono_literals;

class FailureDetectorLease : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kBase = 4096;
  static constexpr std::size_t kRanks = 2;
  static constexpr std::chrono::milliseconds kLease{100};

  void SetUp() override {
    device_ = check_ok(cxlsim::DaxDevice::create(1_MiB));
    cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    acc_ = std::make_unique<cxlsim::Accessor>(*device_, *cache_, clock_);
    FailureDetector::format(*acc_, kBase, kRanks);
    observer_ = std::make_unique<FailureDetector>(kBase, kRanks,
                                                  /*my_rank=*/0, kLease);
    peer_ = std::make_unique<FailureDetector>(kBase, kRanks,
                                              /*my_rank=*/1, kLease);
    // Both detectors share one fake clock, parked away from the epoch so
    // lease subtraction can never underflow the time_point.
    now_ = FailureDetector::Clock::time_point{} + 1h;
    observer_->debug_set_clock([this] { return now_; });
    peer_->debug_set_clock([this] { return now_; });
  }

  void advance(std::chrono::milliseconds by) { now_ += by; }

  simtime::VClock clock_;
  std::unique_ptr<cxlsim::DaxDevice> device_;
  std::unique_ptr<cxlsim::CacheSim> cache_;
  std::unique_ptr<cxlsim::Accessor> acc_;
  std::unique_ptr<FailureDetector> observer_;
  std::unique_ptr<FailureDetector> peer_;
  FailureDetector::Clock::time_point now_;
};

TEST_F(FailureDetectorLease, HeartbeatExactlyAtLeaseEdgeIsNotConvicted) {
  peer_->beat(*acc_);
  // First look starts the lease window.
  EXPECT_FALSE(observer_->dead(*acc_, 1));
  // Exactly one lease of silence: the boundary itself still counts as
  // alive (conviction is `elapsed > lease`, not `>=`).
  advance(kLease);
  EXPECT_FALSE(observer_->dead(*acc_, 1));
  EXPECT_TRUE(observer_->check_peer(*acc_, 1).is_ok());
  // One tick past the edge: convicted.
  advance(1ms);
  EXPECT_TRUE(observer_->dead(*acc_, 1));
  EXPECT_EQ(observer_->check_peer(*acc_, 1).code(), ErrorCode::kPeerFailed);
}

TEST_F(FailureDetectorLease, CounterAdvanceInsideTheLeaseRestartsIt) {
  peer_->beat(*acc_);
  EXPECT_FALSE(observer_->dead(*acc_, 1));
  // 80 ms in (past the lease/8 publish throttle) the peer beats again.
  advance(80ms);
  peer_->beat(*acc_);
  EXPECT_FALSE(observer_->dead(*acc_, 1));  // observes the advance
  // The lease now runs from the second observation: a full lease later is
  // still the edge, one more tick convicts.
  advance(kLease);
  EXPECT_FALSE(observer_->dead(*acc_, 1));
  advance(1ms);
  EXPECT_TRUE(observer_->dead(*acc_, 1));
}

TEST_F(FailureDetectorLease, StickyVerdictSurvivesLateHeartbeat) {
  peer_->beat(*acc_);
  EXPECT_FALSE(observer_->dead(*acc_, 1));
  advance(kLease + 1ms);
  ASSERT_TRUE(observer_->dead(*acc_, 1));
  // The "dead" host resumes beating — too late: its locks may already be
  // broken and its arena state scavenged. The verdict must not flip back.
  advance(50ms);
  peer_->beat(*acc_);
  EXPECT_TRUE(observer_->dead(*acc_, 1));
  advance(1ms);
  peer_->beat(*acc_);
  EXPECT_TRUE(observer_->dead(*acc_, 1));
  EXPECT_EQ(observer_->failed_ranks(), (std::vector<int>{1}));
  EXPECT_EQ(observer_->check_peer(*acc_, 1).code(), ErrorCode::kPeerFailed);
}

TEST_F(FailureDetectorLease, SelfAndOutOfRangePeersAreAlwaysAlive) {
  advance(kLease * 10);
  EXPECT_FALSE(observer_->dead(*acc_, 0));   // never its own peer
  EXPECT_FALSE(observer_->dead(*acc_, -1));  // out of range
  EXPECT_FALSE(observer_->dead(*acc_, static_cast<int>(kRanks)));
  EXPECT_TRUE(observer_->failed_ranks().empty());
}

TEST_F(FailureDetectorLease, BeatPublishThrottleStillKeepsThePeerAlive) {
  // A waiter that calls beat() every iteration publishes only every
  // lease/8; the observer must still never convict it.
  peer_->beat(*acc_);
  EXPECT_FALSE(observer_->dead(*acc_, 1));
  for (int step = 0; step < 40; ++step) {
    advance(kLease / 4);
    peer_->beat(*acc_);
    EXPECT_FALSE(observer_->dead(*acc_, 1)) << "step " << step;
  }
}

}  // namespace
}  // namespace cmpi::runtime
