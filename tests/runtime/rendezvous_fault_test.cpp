// Rendezvous × faults: what the large-message one-copy path guarantees
// when ranks die or media rots under it.
//
//   * Sender dies after the RTS is durable: the payload is already in its
//     slab and the descriptor in the ring — the receiver completes the
//     message without the sender, and a survivor's scavenge reclaims the
//     never-FINed slot (counted as a rendezvous slot in the report).
//   * Sender dies after writing the slab but before the RTS: the receiver
//     never learns of the message (kPeerFailed), and the orphaned slab is
//     scavenged the same way.
//   * Receiver dies holding an un-FINed slot: the sender's endpoint-local
//     scavenge destroys its own inflight slabs toward the corpse.
//   * Poison lands on the slab while an unexpected arrival is parked
//     there: the deferred pull surfaces kDataPoisoned at match time.
//   * A crashed sender's stale RTS cells are incarnation-fenced after
//     respawn: descriptors consumed, slab untouched, nothing delivered.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cmpi.hpp"
#include "cxlsim/fault_injector.hpp"
#include "runtime/universe.hpp"

namespace cmpi {
namespace {

using namespace std::chrono_literals;

runtime::UniverseConfig rdvz_fault_config() {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 32_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.cell_payload = 4_KiB;  // rendezvous threshold defaults to this
  cfg.failure_lease = 50ms;
  return cfg;
}

bool wait_for_crash(runtime::RankCtx& ctx, int rank,
                    std::chrono::milliseconds limit = 10000ms) {
  const auto deadline = std::chrono::steady_clock::now() + limit;
  const cxlsim::FaultInjector* fi = ctx.device().fault_injector();
  while (std::chrono::steady_clock::now() < deadline) {
    if (fi != nullptr && fi->rank_crashed(rank)) {
      return true;
    }
    std::this_thread::sleep_for(1ms);
  }
  return false;
}

std::vector<std::byte> patterned(std::size_t size, std::uint64_t seed) {
  std::vector<std::byte> data(size);
  Rng rng(seed);
  for (auto& b : data) {
    b = static_cast<std::byte>(rng.next_below(256));
  }
  return data;
}

TEST(RendezvousFault, SenderCrashAfterRtsStillDelivers) {
  runtime::UniverseConfig cfg = rdvz_fault_config();
  // One segment (15 KB rounds up to a single segment quantum): the first
  // RTS is also the last chunk, and the sender dies the instant it is
  // durable.
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "p2p-rdvz-rts", .occurrence = 1});
  runtime::Universe universe(cfg);
  const std::vector<std::byte> payload = patterned(15'000, 61);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 1) {
      (void)mpi.send(0, 3, payload);
      FAIL() << "scripted crash at the RTS did not fire";
    } else {
      // The slab and the descriptor outlive the sender: the receive
      // completes clean off the dead rank's published state.
      std::vector<std::byte> buf(payload.size());
      const auto r = mpi.recv_for(1, 3, buf, 10000ms);
      ASSERT_TRUE(r.is_ok()) << r.status().message();
      EXPECT_EQ(buf, payload);
      ASSERT_TRUE(wait_for_crash(ctx, 1));
      // Our FIN went to a corpse, so the slot is still allocated in the
      // pool; scavenge reclaims it and attributes it as a rendezvous slot.
      const auto rep = mpi.scavenge(1);
      ASSERT_TRUE(rep.is_ok()) << rep.status().message();
      EXPECT_TRUE(rep.value().pool.performed);
      EXPECT_EQ(rep.value().pool.rendezvous_slots_reclaimed, 1u);
      EXPECT_EQ(rep.value().pool.arena_slots_reclaimed, 1u);
    }
  });

  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{1}));
  EXPECT_EQ(universe.recovery_stats().rendezvous_slots_scavenged, 1u);
}

TEST(RendezvousFault, SenderCrashBeforeRtsLeavesOrphanSlab) {
  runtime::UniverseConfig cfg = rdvz_fault_config();
  // The slab is written but the RTS never published: the receiver must
  // fail kPeerFailed (no message ever existed for it), and the orphan
  // slab is reclaimed by the pool scavenge.
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "p2p-rdvz-slab-written", .occurrence = 1});
  runtime::Universe universe(cfg);
  const std::vector<std::byte> payload = patterned(100'000, 62);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 1) {
      (void)mpi.send(0, 3, payload);
      FAIL() << "scripted crash after the slab write did not fire";
    } else {
      std::vector<std::byte> buf(payload.size());
      const auto r = mpi.recv_for(1, 3, buf, 10000ms);
      ASSERT_FALSE(r.is_ok());
      EXPECT_EQ(r.status().code(), ErrorCode::kPeerFailed);
      ASSERT_TRUE(wait_for_crash(ctx, 1));
      const auto rep = mpi.scavenge(1);
      ASSERT_TRUE(rep.is_ok()) << rep.status().message();
      EXPECT_EQ(rep.value().pool.rendezvous_slots_reclaimed, 1u);
    }
  });

  EXPECT_EQ(universe.recovery_stats().rendezvous_slots_scavenged, 1u);
}

TEST(RendezvousFault, ReceiverCrashFreesSendersInflightSlot) {
  runtime::UniverseConfig cfg = rdvz_fault_config();
  // The victim's only send is a zero-byte token: its first eager chunk
  // sync point kills it — after rank 0's rendezvous send was announced,
  // before any FIN.
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "p2p-chunk-staged", .occurrence = 1});
  runtime::Universe universe(cfg);
  const std::vector<std::byte> payload = patterned(100'000, 63);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 1) {
      // Never posts the matching recv — the slot can only come back via
      // the sender's scavenge.
      std::byte token{0x1};
      (void)mpi.send(0, 9, {&token, 1});
      FAIL() << "scripted crash did not fire";
    } else {
      check_ok(mpi.send(1, 3, payload));  // completes once announced
      EXPECT_EQ(mpi.endpoint().debug_queue_sizes().rendezvous_inflight, 1u);
      ASSERT_TRUE(wait_for_crash(ctx, 1));
      const auto rep = mpi.scavenge(1);
      ASSERT_TRUE(rep.is_ok()) << rep.status().message();
      // The slab is OURS (sender-owned): the endpoint half destroys it;
      // the pool half finds nothing of the corpse's to reclaim.
      EXPECT_EQ(rep.value().endpoint.rendezvous_slots_freed, 1u);
      EXPECT_EQ(rep.value().pool.rendezvous_slots_reclaimed, 0u);
      EXPECT_EQ(mpi.endpoint().debug_queue_sizes().rendezvous_inflight, 0u);
    }
  });

  EXPECT_EQ(universe.recovery_stats().rendezvous_slots_scavenged, 1u);
}

TEST(RendezvousFault, PoisonedSlabSurfacesDataPoisonedAtDeferredMatch) {
  runtime::UniverseConfig cfg = rdvz_fault_config();
  // Install the injector with a crash that can never fire; the poison is
  // aimed at runtime once the slab address is known.
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 0, .point = "rdvz-test-never", .occurrence = 1});
  runtime::Universe universe(cfg);
  const std::vector<std::byte> payload = patterned(100'000, 64);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 0) {
      check_ok(mpi.send(1, 3, payload));
      // The message is parked in our slab (the receiver posts no recv
      // until told to). Poison the slab under it: the deferred pull at
      // match time must surface the media error.
      const auto slots = mpi.endpoint().debug_rendezvous_inflight(1);
      ASSERT_EQ(slots.size(), 1u);
      ctx.device().fault_injector()->poison(slots[0].pool_offset, 64);
      std::byte go{0x1};
      check_ok(mpi.send(1, 4, {&go, 1}));
      // The receiver FINs even a poisoned delivery; its ack follows the
      // FIN in FIFO order, so the slot must be home by now.
      std::byte ack{};
      check_ok(mpi.recv_for(1, 5, {&ack, 1}, 10000ms).status());
      EXPECT_EQ(mpi.endpoint().debug_queue_sizes().rendezvous_inflight, 0u);
    } else {
      std::byte go{};
      check_ok(mpi.recv_for(0, 4, {&go, 1}, 10000ms).status());
      std::vector<std::byte> buf(payload.size());
      const auto r = mpi.recv_for(0, 3, buf, 10000ms);
      ASSERT_FALSE(r.is_ok());
      EXPECT_EQ(r.status().code(), ErrorCode::kDataPoisoned);
      std::byte ack{0x2};
      check_ok(mpi.send(0, 5, {&ack, 1}));
    }
  });

  EXPECT_TRUE(universe.failed_ranks().empty());
}

TEST(RendezvousFault, StaleRtsIsFencedAfterRespawn) {
  runtime::UniverseConfig cfg = rdvz_fault_config();
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = 1, .point = "p2p-rdvz-rts", .occurrence = 1});
  runtime::Universe universe(cfg);
  const std::vector<std::byte> stale = patterned(100'000, 65);
  const std::vector<std::byte> fresh = patterned(300, 66);

  // Epoch 1: the victim's RTS goes durable, then it dies. Nobody consumes
  // the descriptor — it waits in the ring for the next epoch.
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 1) {
      (void)mpi.send(0, 3, stale);
      FAIL() << "scripted crash at the RTS did not fire";
    } else {
      ASSERT_TRUE(wait_for_crash(ctx, 1));
    }
  });
  EXPECT_EQ(universe.failed_ranks(), (std::vector<int>{1}));

  universe.respawn(1);
  EXPECT_EQ(universe.incarnation(1), 1u);

  // Epoch 2: the survivor's first drain walks the incarnation-0 RTS and
  // fences it — descriptor consumed, slab untouched, nothing delivered,
  // no FIN. The respawned rank's fresh message arrives intact.
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    if (ctx.rank() == 1) {
      check_ok(mpi.send(0, 7, fresh));
    } else {
      std::vector<std::byte> buf(fresh.size());
      const auto r = mpi.recv_for(1, 7, buf, 10000ms);
      ASSERT_TRUE(r.is_ok()) << r.status().message();
      EXPECT_EQ(buf, fresh);
    }
  });

  const runtime::RecoveryStats stats = universe.recovery_stats();
  EXPECT_EQ(stats.stale_fenced, 1u);
  EXPECT_TRUE(universe.failed_ranks().empty());
}

}  // namespace
}  // namespace cmpi
