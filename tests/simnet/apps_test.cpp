#include "simnet/apps.hpp"

#include <gtest/gtest.h>

namespace cmpi::simnet {
namespace {

ClusterConfig cluster_for(int nodes, TransportProfile profile) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.transport = std::move(profile);
  return cfg;
}

CgParams quick_cg() {
  CgParams p;
  p.outer_iters = 1;
  return p;
}

MiniAmrParams quick_amr() {
  MiniAmrParams p;
  p.timesteps = 20;
  return p;
}

TEST(SimnetApps, CgStrongScales) {
  const AppResult two = run_cg(cluster_for(2, cxl_shm_profile()), quick_cg());
  const AppResult eight =
      run_cg(cluster_for(8, cxl_shm_profile()), quick_cg());
  EXPECT_GT(two.total_time, 2.5 * eight.total_time);
}

TEST(SimnetApps, CgCommFractionIsSmall) {
  // §4.4: communication is <15% of CG runtime on CXL and CX-6 Dx.
  for (const auto& profile : {cxl_shm_profile(), tcp_cx6dx_profile()}) {
    const AppResult r = run_cg(cluster_for(8, profile), quick_cg());
    EXPECT_LT(r.comm_fraction(), 0.15) << profile.name;
    EXPECT_GT(r.comm_fraction(), 0.0) << profile.name;
  }
}

TEST(SimnetApps, CgCxlCommBeatsNetworkTransports) {
  const double cxl =
      run_cg(cluster_for(8, cxl_shm_profile()), quick_cg()).comm_time;
  const double mlx =
      run_cg(cluster_for(8, tcp_cx6dx_profile()), quick_cg()).comm_time;
  const double eth =
      run_cg(cluster_for(8, tcp_ethernet_profile()), quick_cg()).comm_time;
  EXPECT_LT(cxl, mlx);
  EXPECT_LT(mlx, eth);
}

TEST(SimnetApps, MiniAmrCommDominatesAndGrows) {
  // §4.4: miniAMR is communication-dominated and its comm time grows with
  // node count while computation stays fixed per rank.
  const AppResult two =
      run_miniamr(cluster_for(2, cxl_shm_profile()), quick_amr());
  const AppResult sixteen =
      run_miniamr(cluster_for(16, cxl_shm_profile()), quick_amr());
  EXPECT_GT(two.comm_fraction(), 0.4);
  EXPECT_GT(sixteen.comm_fraction(), two.comm_fraction());
  EXPECT_GT(sixteen.comm_time, two.comm_time);
}

TEST(SimnetApps, MiniAmrTransportDeltasAreSmall) {
  // §4.4: the transport only moves miniAMR totals by a few percent
  // (imbalance waits dominate measured communication time).
  const double cxl =
      run_miniamr(cluster_for(8, cxl_shm_profile()), quick_amr()).total_time;
  const double mlx =
      run_miniamr(cluster_for(8, tcp_cx6dx_profile()), quick_amr())
          .total_time;
  EXPECT_LT(cxl, mlx);
  EXPECT_LT((mlx - cxl) / cxl, 0.10);
}

TEST(SimnetApps, MiniAmrEthernetLosesAtScale) {
  const double eth16 =
      run_miniamr(cluster_for(16, tcp_ethernet_profile()), quick_amr())
          .total_time;
  const double mlx16 =
      run_miniamr(cluster_for(16, tcp_cx6dx_profile()), quick_amr())
          .total_time;
  EXPECT_GT(eth16, mlx16);
}

TEST(SimnetApps, Deterministic) {
  const AppResult a = run_cg(cluster_for(4, cxl_shm_profile()), quick_cg());
  const AppResult b = run_cg(cluster_for(4, cxl_shm_profile()), quick_cg());
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.comm_time, b.comm_time);
}

TEST(SimnetPods, SinglePodIsIdenticalToFlatCluster) {
  // nodes_per_pod == nodes collapses to one pod: no cross-pod pairs, no
  // router hops, the hierarchical dispatch never fires — the DES must
  // produce bit-identical timing to the original flat configuration.
  const ClusterConfig base = cluster_for(8, cxl_shm_profile());
  ClusterConfig onepod = base;
  onepod.nodes_per_pod = 8;
  ASSERT_EQ(onepod.pods(), 1);
  const AppResult a = run_cg(base, quick_cg());
  const AppResult b = run_cg(onepod, quick_cg());
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.comm_time, b.comm_time);
  const AppResult c = run_miniamr(base, quick_amr());
  const AppResult d = run_miniamr(onepod, quick_amr());
  EXPECT_DOUBLE_EQ(c.total_time, d.total_time);
  EXPECT_DOUBLE_EQ(c.comm_time, d.comm_time);
}

TEST(SimnetPods, HierarchicalAllreduceBeatsFlatAcrossPods) {
  // 16 nodes in 4 pods: the flat recursive doubling squeezes every
  // cross-pod exchange through the serial pod routers; the hierarchical
  // algorithm sends one message per pod per round.
  ClusterConfig flat = cluster_for(16, cxl_shm_profile());
  flat.nodes_per_pod = 4;
  flat.hierarchical_collectives = false;
  ClusterConfig hier = flat;
  hier.hierarchical_collectives = true;
  ASSERT_EQ(flat.pods(), 4);
  const AppResult f = run_cg(flat, quick_cg());
  const AppResult h = run_cg(hier, quick_cg());
  EXPECT_LT(h.comm_time, f.comm_time);
  EXPECT_LT(h.total_time, f.total_time);
}

TEST(SimnetPods, PodTierIsDeterministic) {
  ClusterConfig cfg = cluster_for(8, tcp_cx6dx_profile());
  cfg.nodes_per_pod = 2;
  const AppResult a = run_miniamr(cfg, quick_amr());
  const AppResult b = run_miniamr(cfg, quick_amr());
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.comm_time, b.comm_time);
}

TEST(SimnetApps, ProfilesMatchTable1) {
  EXPECT_DOUBLE_EQ(tcp_ethernet_profile().inter_bytes_per_ns, 0.1178);
  EXPECT_DOUBLE_EQ(tcp_cx6dx_profile().inter_bytes_per_ns, 11.5);
  EXPECT_DOUBLE_EQ(tcp_ethernet_profile().inter_latency, 16000);
  EXPECT_DOUBLE_EQ(tcp_cx6dx_profile().inter_latency, 18000);
  EXPECT_LT(cxl_shm_profile().inter_latency,
            tcp_ethernet_profile().inter_latency);
}

}  // namespace
}  // namespace cmpi::simnet
