#include "simnet/apps.hpp"

#include <gtest/gtest.h>

namespace cmpi::simnet {
namespace {

ClusterConfig cluster_for(int nodes, TransportProfile profile) {
  ClusterConfig cfg;
  cfg.nodes = nodes;
  cfg.transport = std::move(profile);
  return cfg;
}

CgParams quick_cg() {
  CgParams p;
  p.outer_iters = 1;
  return p;
}

MiniAmrParams quick_amr() {
  MiniAmrParams p;
  p.timesteps = 20;
  return p;
}

TEST(SimnetApps, CgStrongScales) {
  const AppResult two = run_cg(cluster_for(2, cxl_shm_profile()), quick_cg());
  const AppResult eight =
      run_cg(cluster_for(8, cxl_shm_profile()), quick_cg());
  EXPECT_GT(two.total_time, 2.5 * eight.total_time);
}

TEST(SimnetApps, CgCommFractionIsSmall) {
  // §4.4: communication is <15% of CG runtime on CXL and CX-6 Dx.
  for (const auto& profile : {cxl_shm_profile(), tcp_cx6dx_profile()}) {
    const AppResult r = run_cg(cluster_for(8, profile), quick_cg());
    EXPECT_LT(r.comm_fraction(), 0.15) << profile.name;
    EXPECT_GT(r.comm_fraction(), 0.0) << profile.name;
  }
}

TEST(SimnetApps, CgCxlCommBeatsNetworkTransports) {
  const double cxl =
      run_cg(cluster_for(8, cxl_shm_profile()), quick_cg()).comm_time;
  const double mlx =
      run_cg(cluster_for(8, tcp_cx6dx_profile()), quick_cg()).comm_time;
  const double eth =
      run_cg(cluster_for(8, tcp_ethernet_profile()), quick_cg()).comm_time;
  EXPECT_LT(cxl, mlx);
  EXPECT_LT(mlx, eth);
}

TEST(SimnetApps, MiniAmrCommDominatesAndGrows) {
  // §4.4: miniAMR is communication-dominated and its comm time grows with
  // node count while computation stays fixed per rank.
  const AppResult two =
      run_miniamr(cluster_for(2, cxl_shm_profile()), quick_amr());
  const AppResult sixteen =
      run_miniamr(cluster_for(16, cxl_shm_profile()), quick_amr());
  EXPECT_GT(two.comm_fraction(), 0.4);
  EXPECT_GT(sixteen.comm_fraction(), two.comm_fraction());
  EXPECT_GT(sixteen.comm_time, two.comm_time);
}

TEST(SimnetApps, MiniAmrTransportDeltasAreSmall) {
  // §4.4: the transport only moves miniAMR totals by a few percent
  // (imbalance waits dominate measured communication time).
  const double cxl =
      run_miniamr(cluster_for(8, cxl_shm_profile()), quick_amr()).total_time;
  const double mlx =
      run_miniamr(cluster_for(8, tcp_cx6dx_profile()), quick_amr())
          .total_time;
  EXPECT_LT(cxl, mlx);
  EXPECT_LT((mlx - cxl) / cxl, 0.10);
}

TEST(SimnetApps, MiniAmrEthernetLosesAtScale) {
  const double eth16 =
      run_miniamr(cluster_for(16, tcp_ethernet_profile()), quick_amr())
          .total_time;
  const double mlx16 =
      run_miniamr(cluster_for(16, tcp_cx6dx_profile()), quick_amr())
          .total_time;
  EXPECT_GT(eth16, mlx16);
}

TEST(SimnetApps, Deterministic) {
  const AppResult a = run_cg(cluster_for(4, cxl_shm_profile()), quick_cg());
  const AppResult b = run_cg(cluster_for(4, cxl_shm_profile()), quick_cg());
  EXPECT_DOUBLE_EQ(a.total_time, b.total_time);
  EXPECT_DOUBLE_EQ(a.comm_time, b.comm_time);
}

TEST(SimnetApps, ProfilesMatchTable1) {
  EXPECT_DOUBLE_EQ(tcp_ethernet_profile().inter_bytes_per_ns, 0.1178);
  EXPECT_DOUBLE_EQ(tcp_cx6dx_profile().inter_bytes_per_ns, 11.5);
  EXPECT_DOUBLE_EQ(tcp_ethernet_profile().inter_latency, 16000);
  EXPECT_DOUBLE_EQ(tcp_cx6dx_profile().inter_latency, 18000);
  EXPECT_LT(cxl_shm_profile().inter_latency,
            tcp_ethernet_profile().inter_latency);
}

}  // namespace
}  // namespace cmpi::simnet
