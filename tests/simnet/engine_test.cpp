#include "simnet/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cmpi::simnet {
namespace {

TEST(SimEngine, DelayAdvancesSimulatedTime) {
  SimEngine engine;
  double end = 0;
  engine.spawn([&](SimProcess& self) {
    EXPECT_DOUBLE_EQ(self.now(), 0.0);
    self.delay(100);
    EXPECT_DOUBLE_EQ(self.now(), 100.0);
    self.delay(50);
    end = self.now();
  });
  EXPECT_DOUBLE_EQ(engine.run(), 150.0);
  EXPECT_DOUBLE_EQ(end, 150.0);
}

TEST(SimEngine, ProcessesInterleaveByEventTime) {
  SimEngine engine;
  std::vector<int> order;
  engine.spawn([&](SimProcess& self) {
    self.delay(10);
    order.push_back(1);
    self.delay(20);  // resumes at 30
    order.push_back(3);
  });
  engine.spawn([&](SimProcess& self) {
    self.delay(20);
    order.push_back(2);
    self.delay(20);  // resumes at 40
    order.push_back(4);
  });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST(SimEngine, SendRecvDeliversWithLinkLatency) {
  SimEngine engine;
  Link* link = engine.make_link(1000, 1.0);  // 1 us latency, 1 B/ns
  double recv_time = 0;
  std::size_t bytes = 0;
  engine.spawn([&](SimProcess& self) {
    self.delay(500);
    self.send(1, 7, 2000, link);
    // Sender continues immediately (async send).
    EXPECT_DOUBLE_EQ(self.now(), 500.0);
  });
  engine.spawn([&](SimProcess& self) {
    bytes = self.recv(0, 7);
    recv_time = self.now();
  });
  engine.run();
  EXPECT_EQ(bytes, 2000u);
  // 500 (send) + 2000/1.0 (wire) + 1000 (latency).
  EXPECT_DOUBLE_EQ(recv_time, 3500.0);
}

TEST(SimEngine, NullLinkDeliversInstantly) {
  SimEngine engine;
  double recv_time = -1;
  engine.spawn([&](SimProcess& self) {
    self.delay(42);
    self.send(1, 0, 10, nullptr);
  });
  engine.spawn([&](SimProcess& self) {
    (void)self.recv(0, 0);
    recv_time = self.now();
  });
  engine.run();
  EXPECT_DOUBLE_EQ(recv_time, 42.0);
}

TEST(SimEngine, RecvBeforeSendBlocks) {
  SimEngine engine;
  double recv_time = 0;
  engine.spawn([&](SimProcess& self) {
    (void)self.recv(1, 3);  // posted at t=0, message comes later
    recv_time = self.now();
  });
  engine.spawn([&](SimProcess& self) {
    self.delay(700);
    self.send(0, 3, 0, nullptr);
  });
  engine.run();
  EXPECT_DOUBLE_EQ(recv_time, 700.0);
}

TEST(SimEngine, MessagesQueueOnTheLink) {
  SimEngine engine;
  Link* link = engine.make_link(0, 1.0);
  std::vector<double> arrivals;
  engine.spawn([&](SimProcess& self) {
    self.send(1, 0, 1000, link);
    self.send(1, 0, 1000, link);  // queues behind the first
  });
  engine.spawn([&](SimProcess& self) {
    (void)self.recv(0, 0);
    arrivals.push_back(self.now());
    (void)self.recv(0, 0);
    arrivals.push_back(self.now());
  });
  engine.run();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(arrivals[0], 1000.0);
  EXPECT_DOUBLE_EQ(arrivals[1], 2000.0);
}

TEST(SimEngine, TagsSeparateStreams) {
  SimEngine engine;
  std::vector<int> got;
  engine.spawn([&](SimProcess& self) {
    self.send(1, /*tag=*/10, 1, nullptr);
    self.send(1, /*tag=*/20, 2, nullptr);
  });
  engine.spawn([&](SimProcess& self) {
    got.push_back(static_cast<int>(self.recv(0, 20)));  // out of order
    got.push_back(static_cast<int>(self.recv(0, 10)));
  });
  engine.run();
  EXPECT_EQ(got, (std::vector<int>{2, 1}));
}

TEST(SimEngine, DeterministicAcrossRuns) {
  const auto run_once = [] {
    SimEngine engine;
    Link* link = engine.make_link(500, 2.0);
    for (int r = 0; r < 4; ++r) {
      engine.spawn([&, r](SimProcess& self) {
        for (int i = 0; i < 10; ++i) {
          const int peer = (r + 1) % 4;
          self.send(peer, i, 256, link);
          (void)self.recv((r + 3) % 4, i);
          self.delay(100 + 13 * r);
        }
      });
    }
    return engine.run();
  };
  const double a = run_once();
  const double b = run_once();
  EXPECT_DOUBLE_EQ(a, b);
  EXPECT_GT(a, 0);
}

TEST(SimEngine, ManyProcesses) {
  SimEngine engine;
  constexpr int kProcs = 64;
  std::vector<double> ends(kProcs, 0);
  for (int r = 0; r < kProcs; ++r) {
    engine.spawn([&, r](SimProcess& self) {
      // Ring: pass a token around.
      if (r == 0) {
        self.send(1, 0, 8, nullptr);
        (void)self.recv(kProcs - 1, 0);
      } else {
        (void)self.recv(r - 1, 0);
        self.delay(10);
        self.send((r + 1) % kProcs, 0, 8, nullptr);
      }
      ends[static_cast<std::size_t>(r)] = self.now();
    });
  }
  engine.run();
  // Token visits 63 ranks, each adding 10 ns.
  EXPECT_DOUBLE_EQ(ends[0], 630.0);
}

}  // namespace
}  // namespace cmpi::simnet
