// tune subsystem: static-policy transparency, dispatch-table lookup and
// round-trip, controller AIMD/hysteresis behaviour driven with synthetic
// signals, seeded-decision determinism, and an end-to-end adaptive run.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/units.hpp"
#include "core/cmpi.hpp"
#include "runtime/universe.hpp"
#include "tune/controller.hpp"
#include "tune/dispatch_table.hpp"
#include "tune/policy.hpp"
#include "tune/tune.hpp"

namespace cmpi::tune {
namespace {

KnobSettings test_defaults() {
  KnobSettings defaults;
  defaults.rendezvous_threshold = 16_KiB;
  defaults.pipeline_quantum = 128_KiB;
  defaults.inflight_depth = 8;
  defaults.publish_batch_cells = 4;
  defaults.publish_batch_bytes = 64_KiB;
  return defaults;
}

// ---------------------------------------------------------------- Policy

TEST(TunePolicy, StaticModeReturnsDefaultsForEveryDestination) {
  const KnobSettings defaults = test_defaults();
  const Policy policy = Policy::make_static(4, defaults);
  EXPECT_FALSE(policy.adaptive());
  for (int dst = 0; dst < 4; ++dst) {
    EXPECT_EQ(policy.settings(dst), defaults);
  }
}

TEST(TunePolicy, AdaptiveModeStartsAtDefaultsAndMutatesPerDestination) {
  Policy policy = Policy::make_adaptive(3, test_defaults());
  EXPECT_TRUE(policy.adaptive());
  policy.mutable_settings(1).pipeline_quantum = 256_KiB;
  EXPECT_EQ(policy.settings(0), test_defaults());
  EXPECT_EQ(policy.settings(1).pipeline_quantum, 256_KiB);
  EXPECT_EQ(policy.settings(2), test_defaults());
}

TEST(TunePolicy, SignalsAccumulateIndependentlyOfKnobMode) {
  Policy policy = Policy::make_static(2, test_defaults());
  policy.signals(1).eager_messages += 3;
  policy.signals(1).eager_bytes += 3 * 8_KiB;
  EXPECT_EQ(policy.signals(1).eager_messages, 3u);
  EXPECT_EQ(policy.signals(0).eager_messages, 0u);
}

// -------------------------------------------------------- DispatchTable

std::vector<DispatchEntry> two_cell_entries() {
  // Two cell geometries, two size classes each. Entries are sorted by
  // max_bytes by the DispatchTable constructor.
  DispatchEntry small_4k{64_KiB, 4_KiB, 16_KiB, 64_KiB, 4, 100.0};
  DispatchEntry large_4k{4_MiB, 4_KiB, 256_KiB, 256_KiB, 8, 200.0};
  DispatchEntry small_64k{64_KiB, 64_KiB, ~std::size_t{0}, 128_KiB, 8, 300.0};
  DispatchEntry large_64k{4_MiB, 64_KiB, ~std::size_t{0}, 128_KiB, 8, 400.0};
  return {small_4k, large_4k, small_64k, large_64k};
}

TEST(DispatchTable, EmptyTableLooksUpToNull) {
  const DispatchTable table;
  EXPECT_EQ(table.lookup(1024), nullptr);
  EXPECT_EQ(table.lookup(1024, 4_KiB), nullptr);
}

TEST(DispatchTable, LookupPrefersRowsMatchingTheCellPayload) {
  const DispatchTable table(two_cell_entries());
  const DispatchEntry* hit = table.lookup(32_KiB, 64_KiB);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cell_payload, 64_KiB);
  EXPECT_EQ(hit->max_bytes, 64_KiB);
  hit = table.lookup(1_MiB, 4_KiB);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cell_payload, 4_KiB);
  EXPECT_EQ(hit->max_bytes, 4_MiB);
}

TEST(DispatchTable, LookupWithoutCellTakesTheSmallestCoveringClass) {
  const DispatchTable table(two_cell_entries());
  const DispatchEntry* hit = table.lookup(32_KiB);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->max_bytes, 64_KiB);
}

TEST(DispatchTable, OversizedBytesFallToTheLargestMatchingRow) {
  const DispatchTable table(two_cell_entries());
  // 16 MiB exceeds every class: the catch-all is the largest row with a
  // matching cell payload.
  const DispatchEntry* hit = table.lookup(16_MiB, 4_KiB);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->max_bytes, 4_MiB);
  EXPECT_EQ(hit->cell_payload, 4_KiB);
}

TEST(DispatchTable, UnknownCellFallsBackToAnyCoveringRow) {
  const DispatchTable table(two_cell_entries());
  const DispatchEntry* hit = table.lookup(32_KiB, 8_KiB);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->max_bytes, 64_KiB);  // covering row of some other cell
}

TEST(DispatchTable, SaveLoadRoundTripsIncludingSizeMaxThreshold) {
  DispatchTable table(two_cell_entries());
  table.set_provenance({{"generator", "tune_test"}, {"resolution", "unit"}});
  std::ostringstream os;
  table.save(os);

  const std::string path = ::testing::TempDir() + "dispatch_roundtrip.json";
  {
    std::ofstream out(path);
    out << os.str();
  }
  const Result<DispatchTable> loaded = DispatchTable::load(path);
  ASSERT_TRUE(loaded.is_ok()) << loaded.status().message();
  ASSERT_EQ(loaded.value().entries().size(), table.entries().size());
  for (std::size_t i = 0; i < table.entries().size(); ++i) {
    EXPECT_EQ(loaded.value().entries()[i], table.entries()[i]) << "entry " << i;
  }
  std::remove(path.c_str());
}

TEST(DispatchTable, LoadRejectsMissingFile) {
  const Result<DispatchTable> loaded =
      DispatchTable::load("/nonexistent/dispatch_table.json");
  EXPECT_FALSE(loaded.is_ok());
}

// ------------------------------------------------------------ Controller

ControllerConfig test_controller_config() {
  ControllerConfig config;
  config.period_ns = 1000;
  config.quantum_step = 16_KiB;
  config.explore_prob = 0.0;  // AIMD tests want no jitter
  config.seed = 42;
  return config;
}

/// One poll with synthetic per-destination traffic layered on top of the
/// policy's cumulative signal counters.
void drive_poll(Controller& controller, Policy& policy, simtime::Ns now,
                const DestSignals& add, const GlobalSignals& global,
                int dst = 0) {
  DestSignals& sig = policy.signals(dst);
  sig.eager_messages += add.eager_messages;
  sig.eager_bytes += add.eager_bytes;
  sig.rdvz_messages += add.rdvz_messages;
  sig.rdvz_bytes += add.rdvz_bytes;
  sig.ring_full += add.ring_full;
  sig.inflight_blocked += add.inflight_blocked;
  controller.poll(now, policy, global);
}

TEST(TuneController, QuantumGrowsAdditivelyWhileRendezvousFlows) {
  Policy policy = Policy::make_adaptive(1, test_defaults());
  Controller controller(test_controller_config(), nullptr);
  const std::size_t before = policy.settings(0).pipeline_quantum;
  drive_poll(controller, policy, 1000, {0, 0, 4, 4 * 1_MiB, 0, 0}, {});
  EXPECT_EQ(policy.settings(0).pipeline_quantum, before + 16_KiB);
  ASSERT_EQ(controller.journal().size(), 1u);
  EXPECT_STREQ(controller.journal()[0].reason, "aimd-increase");
}

TEST(TuneController, RingFullDoublesTheQuantumStep) {
  Policy policy = Policy::make_adaptive(1, test_defaults());
  Controller controller(test_controller_config(), nullptr);
  const std::size_t before = policy.settings(0).pipeline_quantum;
  drive_poll(controller, policy, 1000, {0, 0, 4, 4 * 1_MiB, 3, 0}, {});
  EXPECT_EQ(policy.settings(0).pipeline_quantum, before + 2 * 16_KiB);
}

TEST(TuneController, FreshRetransmitsHalveQuantumAndInflight) {
  Policy policy = Policy::make_adaptive(1, test_defaults());
  Controller controller(test_controller_config(), nullptr);
  GlobalSignals global;
  global.retransmits = 5;  // fresh relative to the controller's zero start
  drive_poll(controller, policy, 1000, {0, 0, 2, 2 * 1_MiB, 0, 0}, global);
  EXPECT_EQ(policy.settings(0).pipeline_quantum, 64_KiB);
  EXPECT_EQ(policy.settings(0).inflight_depth, 4u);
  // Same cumulative count next poll: no longer "fresh", so additive
  // increase resumes.
  drive_poll(controller, policy, 2000, {0, 0, 2, 2 * 1_MiB, 0, 0}, global);
  EXPECT_EQ(policy.settings(0).pipeline_quantum, 64_KiB + 16_KiB);
  EXPECT_EQ(policy.settings(0).inflight_depth, 4u);
}

TEST(TuneController, ColdCacheHoldsQuantumGrowth) {
  Policy policy = Policy::make_adaptive(1, test_defaults());
  Controller controller(test_controller_config(), nullptr);
  GlobalSignals global;
  global.cache_hit_rate = 0.1;  // collapsed: halve instead of grow
  drive_poll(controller, policy, 1000, {0, 0, 2, 2 * 1_MiB, 0, 0}, global);
  EXPECT_EQ(policy.settings(0).pipeline_quantum, 64_KiB);
  // Inflight is untouched: cache pressure is a quantum signal only.
  EXPECT_EQ(policy.settings(0).inflight_depth, 8u);
}

TEST(TuneController, InflightGrowsByOneWhenSendsStallOnTheBudget) {
  Policy policy = Policy::make_adaptive(1, test_defaults());
  Controller controller(test_controller_config(), nullptr);
  drive_poll(controller, policy, 1000, {0, 0, 0, 0, 0, 2}, {});
  EXPECT_EQ(policy.settings(0).inflight_depth, 9u);
}

TEST(TuneController, IdleDestinationsAreLeftAlone) {
  Policy policy = Policy::make_adaptive(2, test_defaults());
  Controller controller(test_controller_config(), nullptr);
  GlobalSignals global;
  global.retransmits = 10;  // would halve knobs on any ACTIVE destination
  controller.poll(1000, policy, global);
  EXPECT_EQ(policy.settings(0), test_defaults());
  EXPECT_EQ(policy.settings(1), test_defaults());
  EXPECT_TRUE(controller.journal().empty());
}

TEST(TuneController, ThresholdPriorNeedsTwoPollsAndABandExit) {
  // 4 MiB-class traffic with a prior saying threshold 256 KiB (vs the
  // 16 KiB default): far outside the 25% band, so it flips — but only
  // after persisting for hysteresis_polls consecutive polls.
  DispatchEntry entry;
  entry.max_bytes = 4_MiB;
  entry.cell_payload = 0;
  entry.rendezvous_threshold = 256_KiB;
  entry.pipeline_quantum = 128_KiB;
  entry.inflight_depth = 8;
  const DispatchTable table({entry});

  Policy policy = Policy::make_adaptive(1, test_defaults());
  Controller controller(test_controller_config(), &table);
  const DestSignals traffic{0, 0, 2, 2 * 2_MiB, 0, 0};
  drive_poll(controller, policy, 1000, traffic, {});
  EXPECT_EQ(policy.settings(0).rendezvous_threshold, 16_KiB)
      << "one poll must not flip the threshold";
  drive_poll(controller, policy, 2000, traffic, {});
  EXPECT_EQ(policy.settings(0).rendezvous_threshold, 256_KiB);
  bool journaled = false;
  for (const Decision& d : controller.journal()) {
    if (d.knob == Decision::Knob::kThreshold) {
      EXPECT_STREQ(d.reason, "prior");
      EXPECT_EQ(d.to, 256_KiB);
      journaled = true;
    }
  }
  EXPECT_TRUE(journaled);
}

TEST(TuneController, ThresholdInsideTheHysteresisBandIsIgnored) {
  // Prior candidate within 25% of the current value: never applied, no
  // matter how many polls it persists.
  DispatchEntry entry;
  entry.max_bytes = 4_MiB;
  entry.rendezvous_threshold = 18_KiB;  // 16 KiB * 1.125, inside the band
  const DispatchTable table({entry});

  Policy policy = Policy::make_adaptive(1, test_defaults());
  Controller controller(test_controller_config(), &table);
  const DestSignals traffic{0, 0, 2, 2 * 2_MiB, 0, 0};
  for (int poll = 0; poll < 5; ++poll) {
    drive_poll(controller, policy, 1000 * (poll + 1), traffic, {});
  }
  EXPECT_EQ(policy.settings(0).rendezvous_threshold, 16_KiB);
}

TEST(TuneController, ThresholdPriorUsesTheMatchingCellRow) {
  // Two rows for the same class; the controller's cell_payload picks one.
  DispatchEntry row_4k;
  row_4k.max_bytes = 4_MiB;
  row_4k.cell_payload = 4_KiB;
  row_4k.rendezvous_threshold = 256_KiB;
  DispatchEntry row_64k = row_4k;
  row_64k.cell_payload = 64_KiB;
  row_64k.rendezvous_threshold = 512_KiB;
  const DispatchTable table({row_4k, row_64k});

  ControllerConfig config = test_controller_config();
  config.cell_payload = 64_KiB;
  Policy policy = Policy::make_adaptive(1, test_defaults());
  Controller controller(config, &table);
  const DestSignals traffic{0, 0, 2, 2 * 2_MiB, 0, 0};
  drive_poll(controller, policy, 1000, traffic, {});
  drive_poll(controller, policy, 2000, traffic, {});
  EXPECT_EQ(policy.settings(0).rendezvous_threshold, 512_KiB);
}

TEST(TuneController, PriorThresholdIsClampedToTheConfiguredMax) {
  DispatchEntry entry;
  entry.max_bytes = 4_MiB;
  entry.rendezvous_threshold = ~std::size_t{0};  // "rendezvous off" row
  const DispatchTable table({entry});

  ControllerConfig config = test_controller_config();
  config.max_threshold = 1_MiB;
  Policy policy = Policy::make_adaptive(1, test_defaults());
  Controller controller(config, &table);
  const DestSignals traffic{0, 0, 2, 2 * 2_MiB, 0, 0};
  drive_poll(controller, policy, 1000, traffic, {});
  drive_poll(controller, policy, 2000, traffic, {});
  EXPECT_EQ(policy.settings(0).rendezvous_threshold, 1_MiB)
      << "an eager-biased row must not disable rendezvous outright";
}

TEST(TuneController, DueFiresOnThePeriodOnly) {
  Controller controller(test_controller_config(), nullptr);
  Policy policy = Policy::make_adaptive(1, test_defaults());
  EXPECT_FALSE(controller.due(999));
  EXPECT_TRUE(controller.due(1000));
  controller.poll(1000, policy, {});
  EXPECT_FALSE(controller.due(1999));
  EXPECT_TRUE(controller.due(2000));
  EXPECT_EQ(controller.polls(), 1u);
}

// --------------------------------------------------------- Determinism

/// Replays a fixed synthetic signal script against a fresh controller and
/// returns the decision journal. Exploration ON: the point is that the
/// seeded jitter replays identically.
std::vector<Decision> journal_for_seed(std::uint64_t seed) {
  ControllerConfig config = test_controller_config();
  config.explore_prob = 0.3;
  config.seed = seed;
  Policy policy = Policy::make_adaptive(2, test_defaults());
  Controller controller(config, nullptr);
  Rng workload(7);  // fixed workload script, independent of the seed
  for (int poll = 0; poll < 64; ++poll) {
    for (int dst = 0; dst < 2; ++dst) {
      DestSignals& sig = policy.signals(dst);
      sig.eager_messages += workload.next_below(4);
      sig.eager_bytes += workload.next_below(4) * 8_KiB;
      sig.rdvz_messages += workload.next_below(3);
      sig.rdvz_bytes += workload.next_below(3) * 1_MiB;
      sig.ring_full += workload.next_below(2);
      sig.inflight_blocked += workload.next_below(2);
    }
    GlobalSignals global;
    global.retransmits = poll / 16;  // occasional fresh retransmit
    controller.poll(1000.0 * (poll + 1), policy, global);
  }
  return controller.journal();
}

TEST(TuneController, SameSeedReplaysTheSameDecisionJournal) {
  const std::vector<Decision> first = journal_for_seed(0xDEADBEEF);
  const std::vector<Decision> second = journal_for_seed(0xDEADBEEF);
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "decision " << i;
  }
}

TEST(TuneSeed, ResolveSeedIsRankMixedAndStable) {
  TuneOptions options;
  options.seed = 1234;
  EXPECT_EQ(resolve_seed(options, 0), resolve_seed(options, 0));
  EXPECT_NE(resolve_seed(options, 0), resolve_seed(options, 1));
  TuneOptions other;
  other.seed = 5678;
  EXPECT_NE(resolve_seed(other, 0), resolve_seed(options, 0));
}

TEST(TuneOptionsResolution, ExplicitModeBeatsEnvironment) {
  TuneOptions options;
  options.mode = Tuning::kEnabled;
  EXPECT_TRUE(tuning_enabled(options));
  options.mode = Tuning::kDisabled;
  EXPECT_FALSE(tuning_enabled(options));
}

// --------------------------------------------------------- End to end

runtime::UniverseConfig adaptive_config() {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 32_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.tune.mode = Tuning::kEnabled;
  cfg.tune.period_ns = 50'000;  // poll often relative to the traffic below
  cfg.tune.seed = 99;
  return cfg;
}

TEST(TuneEndToEnd, AdaptiveUniversePollsAndSplitsTrafficByPath) {
  runtime::Universe universe(adaptive_config());
  std::uint64_t polls = 0;
  std::uint64_t eager_msgs = 0;
  std::uint64_t rdvz_msgs = 0;
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const int peer = 1 - ctx.rank();
    std::vector<std::byte> small(1_KiB, std::byte{0x11});
    std::vector<std::byte> big(1_MiB, std::byte{0x22});
    for (int it = 0; it < 8; ++it) {
      if (ctx.rank() == 0) {
        check_ok(mpi.send(peer, 1, small));
        check_ok(mpi.send(peer, 2, big));
      } else {
        check_ok(mpi.recv(peer, 1, small).status());
        check_ok(mpi.recv(peer, 2, big).status());
      }
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      // Deterministic poll pump (see JournaledDecisions... below): step
      // past the period and let iprobe run the progress path once.
      ctx.clock().advance(4 * adaptive_config().tune.period_ns);
      (void)mpi.iprobe(peer, 1);
      const p2p::Endpoint& ep = mpi.endpoint();
      ASSERT_NE(ep.tune_controller(), nullptr);
      polls = ep.tune_controller()->polls();
      eager_msgs = ep.stats().eager_messages.load();
      rdvz_msgs = ep.stats().rendezvous_sent.load();
      // The adaptive policy is live: knob reads go through per-dest state.
      EXPECT_GE(ep.knobs(peer).pipeline_quantum,
                ep.tune_controller()->config().min_quantum);
    }
  });
  EXPECT_GT(polls, 0u) << "the progress path never polled the controller";
  EXPECT_EQ(eager_msgs, 8u);   // 1 KiB sends stay eager
  EXPECT_EQ(rdvz_msgs, 8u);    // 1 MiB sends go rendezvous
}

TEST(TuneEndToEnd, DisabledTuningHasNoControllerAndStaticKnobs) {
  runtime::UniverseConfig cfg = adaptive_config();
  cfg.tune.mode = Tuning::kDisabled;
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const int peer = 1 - ctx.rank();
    std::vector<std::byte> buf(64_KiB, std::byte{0x33});
    if (ctx.rank() == 0) {
      check_ok(mpi.send(peer, 5, buf));
    } else {
      check_ok(mpi.recv(peer, 5, buf).status());
    }
    const p2p::Endpoint& ep = mpi.endpoint();
    EXPECT_EQ(ep.tune_controller(), nullptr);
    EXPECT_EQ(ep.knobs(peer).rendezvous_threshold, ep.rendezvous_threshold());
  });
}

TEST(TuneEndToEnd, JournaledDecisionsStayInsideTheConfiguredBounds) {
  // Journal CONTENT determinism is pinned hermetically above (same seed +
  // same signal sequence => same journal); end-to-end, the poll count and
  // the deltas each poll sees depend on how often the progress loop spins
  // between doorbells, which host scheduling decides. What every run must
  // still produce is a well-formed journal: real transitions, known
  // reasons, values inside the controller's clamps.
  runtime::Universe universe(adaptive_config());
  std::vector<Decision> journal;
  ControllerConfig bounds;
  std::uint64_t polls = 0;
  std::uint64_t rdvz_sent = 0;
  std::uint64_t fallbacks = 0;
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const int peer = 1 - ctx.rank();
    std::vector<std::byte> big(2_MiB, std::byte{0x44});
    for (int it = 0; it < 6; ++it) {
      if (ctx.rank() == 0) {
        check_ok(mpi.send(peer, 9, big));
      } else {
        check_ok(mpi.recv(peer, 9, big).status());
      }
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      // Whether a poll fired DURING the sends depends on how often the
      // progress loop spun, which host scheduling decides. Pump one
      // explicitly: step past the period and iprobe (which runs
      // progress), so the controller is guaranteed to see the
      // accumulated rendezvous deltas at least once.
      ctx.clock().advance(4 * adaptive_config().tune.period_ns);
      (void)mpi.iprobe(peer, 9);
      journal = mpi.endpoint().tune_controller()->journal();
      bounds = mpi.endpoint().tune_controller()->config();
      polls = mpi.endpoint().tune_controller()->polls();
      rdvz_sent = mpi.endpoint().stats().rendezvous_sent.load();
      fallbacks = mpi.endpoint().stats().rendezvous_fallbacks.load();
    }
  });
  ASSERT_FALSE(journal.empty())
      << "pure rendezvous traffic must adapt (polls=" << polls
      << " rdvz_sent=" << rdvz_sent << " fallbacks=" << fallbacks << ")";
  for (const Decision& d : journal) {
    EXPECT_EQ(d.dst, 1);
    EXPECT_NE(d.from, d.to);
    const std::string reason = d.reason;
    EXPECT_TRUE(reason == "prior" || reason == "aimd-increase" ||
                reason == "backpressure" || reason == "inflight-stall" ||
                reason == "explore")
        << reason;
    if (d.knob == Decision::Knob::kQuantum) {
      EXPECT_GE(d.to, bounds.min_quantum);
      EXPECT_LE(d.to, bounds.max_quantum);
    } else if (d.knob == Decision::Knob::kInflight) {
      EXPECT_GE(d.to, bounds.min_inflight);
      EXPECT_LE(d.to, bounds.max_inflight);
    } else {
      EXPECT_GE(d.to, bounds.min_threshold);
      EXPECT_LE(d.to, bounds.max_threshold);
    }
  }
}

}  // namespace
}  // namespace cmpi::tune
