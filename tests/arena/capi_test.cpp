#include "arena/capi.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace cmpi::arena {
namespace {

class CapiTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = check_ok(cxlsim::DaxDevice::create(8_MiB));
    cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    acc_ = std::make_unique<cxlsim::Accessor>(*device_, *cache_, clock_);
    Arena::Params p;
    p.levels = 3;
    p.level1_buckets = 31;
    p.max_participants = 4;
    arena_ = std::make_unique<Arena>(
        check_ok(Arena::format(*acc_, 0, 2_MiB, 0, p)));
    cxl_shm_set_context(arena_.get());
  }

  void TearDown() override { cxl_shm_set_context(nullptr); }

  simtime::VClock clock_;
  std::unique_ptr<cxlsim::DaxDevice> device_;
  std::unique_ptr<cxlsim::CacheSim> cache_;
  std::unique_ptr<cxlsim::Accessor> acc_;
  std::unique_ptr<Arena> arena_;
};

TEST_F(CapiTest, InitRequiresContext) {
  cxl_shm_set_context(nullptr);
  EXPECT_EQ(cxl_shm_init(), -1);
  EXPECT_NE(std::string(cxl_shm_last_error()).find("no arena context"),
            std::string::npos);
}

TEST_F(CapiTest, CreateOpenCloseDestroyLifecycle) {
  ASSERT_EQ(cxl_shm_init(), 0);

  CxlShmObject* created = nullptr;
  ASSERT_EQ(cxl_shm_create("msg_queue", 4096, &created), 0);
  ASSERT_NE(created, nullptr);
  EXPECT_EQ(cxl_shm_obj_size(created), 4096u);
  EXPECT_GT(cxl_shm_obj_offset(created), 0u);

  CxlShmObject* opened = nullptr;
  ASSERT_EQ(cxl_shm_open("msg_queue", &opened), 0);
  EXPECT_EQ(cxl_shm_obj_offset(opened), cxl_shm_obj_offset(created));
  EXPECT_EQ(cxl_shm_close(opened), 0);

  EXPECT_EQ(cxl_shm_destroy(created), 0);
  CxlShmObject* missing = nullptr;
  EXPECT_EQ(cxl_shm_open("msg_queue", &missing), -1);

  EXPECT_EQ(cxl_shm_finalize(), 0);
}

TEST_F(CapiTest, OperationsBeforeInitFail) {
  CxlShmObject* obj = nullptr;
  EXPECT_EQ(cxl_shm_create("x", 64, &obj), -1);
  EXPECT_EQ(cxl_shm_open("x", &obj), -1);
}

TEST_F(CapiTest, CreateDuplicateFails) {
  ASSERT_EQ(cxl_shm_init(), 0);
  CxlShmObject* a = nullptr;
  ASSERT_EQ(cxl_shm_create("dup", 64, &a), 0);
  CxlShmObject* b = nullptr;
  EXPECT_EQ(cxl_shm_create("dup", 64, &b), -1);
  EXPECT_NE(std::string(cxl_shm_last_error()).find("ALREADY_EXISTS"),
            std::string::npos);
  EXPECT_EQ(cxl_shm_destroy(a), 0);
}

TEST_F(CapiTest, NullArgumentsRejected) {
  ASSERT_EQ(cxl_shm_init(), 0);
  CxlShmObject* obj = nullptr;
  EXPECT_EQ(cxl_shm_create(nullptr, 64, &obj), -1);
  EXPECT_EQ(cxl_shm_create("x", 64, nullptr), -1);
  EXPECT_EQ(cxl_shm_open(nullptr, &obj), -1);
  EXPECT_EQ(cxl_shm_destroy(nullptr), -1);
  EXPECT_EQ(cxl_shm_close(nullptr), -1);
}

TEST_F(CapiTest, FinalizeWithoutInitFails) {
  EXPECT_EQ(cxl_shm_finalize(), -1);
}

}  // namespace
}  // namespace cmpi::arena
