// The paper's production arena configuration (§3.7): 10 hash levels,
// level-1 slot cap 200,000 — primes 199,999 down to 199,873, 1,999,260
// slots, ~244 MiB of metadata. This suite proves the implementation
// actually runs at that scale (slots live in a sparse memfd, so only
// touched pages cost memory).
#include <gtest/gtest.h>

#include <string>

#include "arena/arena.hpp"
#include "common/units.hpp"

namespace cmpi::arena {
namespace {

class PaperScaleArena : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = check_ok(cxlsim::DaxDevice::create(512_MiB));
    cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    acc_ = std::make_unique<cxlsim::Accessor>(*device_, *cache_, clock_);
  }

  Arena::Params paper_params() {
    Arena::Params p;
    p.levels = 10;
    p.level1_buckets = 200000;
    p.max_participants = 64;
    return p;
  }

  simtime::VClock clock_;
  std::unique_ptr<cxlsim::DaxDevice> device_;
  std::unique_ptr<cxlsim::CacheSim> cache_;
  std::unique_ptr<cxlsim::Accessor> acc_;
};

TEST_F(PaperScaleArena, MetadataFootprintMatchesSection37) {
  const auto params = paper_params();
  // 1,999,260 slots x 128 B plus header and lock.
  const std::uint64_t slots_bytes = 1999260ull * 128;
  EXPECT_GE(Arena::metadata_footprint(params), slots_bytes);
  EXPECT_LE(Arena::metadata_footprint(params), slots_bytes + 1_MiB);
}

TEST_F(PaperScaleArena, FormatCreateOpenDestroyAtFullScale) {
  Arena arena_obj = check_ok(
      Arena::format(*acc_, 0, 400_MiB, 0, paper_params()));
  EXPECT_EQ(arena_obj.index().total_slots(), 1999260u);
  EXPECT_EQ(arena_obj.index().level_buckets(0), 199999u);
  EXPECT_EQ(arena_obj.index().level_buckets(9), 199873u);

  // Exercise the full lifecycle with a few hundred objects spread across
  // the huge table.
  for (int i = 0; i < 200; ++i) {
    check_ok(arena_obj.create("scale_obj_" + std::to_string(i), 256));
  }
  for (int i = 0; i < 200; ++i) {
    auto handle = check_ok(arena_obj.open("scale_obj_" + std::to_string(i)));
    EXPECT_EQ(handle.size, 256u);
    if (i % 2 == 0) {
      check_ok(arena_obj.destroy(handle));
    }
  }
  EXPECT_FALSE(arena_obj.open("scale_obj_0").is_ok());
  EXPECT_TRUE(arena_obj.open("scale_obj_1").is_ok());
}

TEST_F(PaperScaleArena, LookupCostIsIndependentOfTableSize) {
  // A probe touches at most 10 slots whether the table holds 10^3 or
  // 2x10^6 buckets: compare open() virtual cost against a small arena.
  Arena big = check_ok(Arena::format(*acc_, 0, 400_MiB, 0, paper_params()));
  check_ok(big.create("needle", 64));
  cache_->drop_all();
  const double t0 = clock_.now();
  auto h1 = check_ok(big.open("needle"));
  const double big_cost = clock_.now() - t0;
  check_ok(big.close(h1));

  Arena::Params small_params;
  small_params.levels = 10;
  small_params.level1_buckets = 1009;
  Arena small = check_ok(
      Arena::format(*acc_, 448_MiB, 32_MiB, 0, small_params));
  check_ok(small.create("needle", 64));
  cache_->drop_all();
  const double t1 = clock_.now();
  auto h2 = check_ok(small.open("needle"));
  const double small_cost = clock_.now() - t1;
  check_ok(small.close(h2));

  EXPECT_LT(big_cost, 3 * small_cost);
  EXPECT_GT(big_cost, small_cost / 3);
}

}  // namespace
}  // namespace cmpi::arena
