#include "arena/bakery_lock.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

namespace cmpi::arena {
namespace {

class BakeryLockTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = cmpi::check_ok(cxlsim::DaxDevice::create(cmpi::kDaxAlignment));
  }

  struct Rank {
    simtime::VClock clock;
    std::unique_ptr<cxlsim::CacheSim> cache;
    std::unique_ptr<cxlsim::Accessor> acc;
  };

  Rank make_rank() {
    Rank r;
    r.cache = std::make_unique<cxlsim::CacheSim>(*device_);
    r.acc = std::make_unique<cxlsim::Accessor>(*device_, *r.cache, r.clock);
    return r;
  }

  std::unique_ptr<cxlsim::DaxDevice> device_;
};

TEST_F(BakeryLockTest, FootprintScalesWithParticipants) {
  EXPECT_EQ(BakeryLock::footprint(1), 128u);
  EXPECT_EQ(BakeryLock::footprint(8), 64u + 8 * 64);
}

TEST_F(BakeryLockTest, FormatThenAttachSeesSameWidth) {
  Rank r = make_rank();
  const auto lock = BakeryLock::format(*r.acc, 0, 16);
  EXPECT_EQ(lock.max_participants(), 16u);
  const auto attached = check_ok(BakeryLock::attach(*r.acc, 0));
  EXPECT_EQ(attached.max_participants(), 16u);
}

TEST_F(BakeryLockTest, AttachRejectsUnformattedPool) {
  Rank r = make_rank();
  const auto attached = BakeryLock::attach(*r.acc, 0);
  ASSERT_FALSE(attached.is_ok());
  EXPECT_EQ(attached.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(BakeryLockTest, AttachRejectsMisalignedBase) {
  Rank r = make_rank();
  BakeryLock::format(*r.acc, 0, 4);
  const auto attached = BakeryLock::attach(*r.acc, 8);
  ASSERT_FALSE(attached.is_ok());
  EXPECT_EQ(attached.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(BakeryLockTest, AttachRejectsCorruptParticipantCount) {
  Rank r = make_rank();
  BakeryLock::format(*r.acc, 0, 4);
  // Clobber the count but keep the magic: header recognized, geometry bad.
  r.acc->nt_store_u64(0, 0);
  const auto zero = BakeryLock::attach(*r.acc, 0);
  ASSERT_FALSE(zero.is_ok());
  EXPECT_EQ(zero.status().code(), ErrorCode::kInvalidArgument);
  r.acc->nt_store_u64(0, std::uint64_t{1} << 40);
  const auto huge = BakeryLock::attach(*r.acc, 0);
  ASSERT_FALSE(huge.is_ok());
  EXPECT_EQ(huge.status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(BakeryLockTest, LockForBreaksDeadHolder) {
  Rank a = make_rank();
  Rank b = make_rank();
  const auto lock = BakeryLock::format(*a.acc, 0, 2);
  // Participant 0 takes the lock and then "dies" holding it.
  lock.lock(*a.acc, 0);
  const Status st = lock.lock_for(
      *b.acc, 1, std::chrono::milliseconds(500),
      [](std::size_t p) { return p == 0; });
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  lock.unlock(*b.acc, 1);
}

TEST_F(BakeryLockTest, LockForTimesOutBehindLiveHolder) {
  Rank a = make_rank();
  Rank b = make_rank();
  const auto lock = BakeryLock::format(*a.acc, 0, 2);
  lock.lock(*a.acc, 0);
  const Status st = lock.lock_for(
      *b.acc, 1, std::chrono::milliseconds(50),
      [](std::size_t) { return false; });
  EXPECT_EQ(st.code(), ErrorCode::kTimedOut);
  // The timed-out waiter withdrew its ticket: the holder can release and
  // a later acquire succeeds immediately.
  lock.unlock(*a.acc, 0);
  const Status again = lock.lock_for(
      *b.acc, 1, std::chrono::milliseconds(500),
      [](std::size_t) { return false; });
  ASSERT_TRUE(again.is_ok()) << again.to_string();
  lock.unlock(*b.acc, 1);
}

TEST_F(BakeryLockTest, SingleParticipantLockUnlock) {
  Rank r = make_rank();
  const auto lock = BakeryLock::format(*r.acc, 0, 4);
  lock.lock(*r.acc, 0);
  lock.unlock(*r.acc, 0);
  lock.lock(*r.acc, 0);  // reacquirable after release
  lock.unlock(*r.acc, 0);
}

TEST_F(BakeryLockTest, TryLockSucceedsUncontended) {
  Rank r = make_rank();
  const auto lock = BakeryLock::format(*r.acc, 0, 4);
  EXPECT_TRUE(lock.try_lock(*r.acc, 1));
  lock.unlock(*r.acc, 1);
}

TEST_F(BakeryLockTest, TryLockFailsWhenHeld) {
  Rank a = make_rank();
  Rank b = make_rank();
  const auto lock = BakeryLock::format(*a.acc, 0, 4);
  lock.lock(*a.acc, 0);
  EXPECT_FALSE(lock.try_lock(*b.acc, 1));
  lock.unlock(*a.acc, 0);
  EXPECT_TRUE(lock.try_lock(*b.acc, 1));
  lock.unlock(*b.acc, 1);
}

TEST_F(BakeryLockTest, MutualExclusionUnderContention) {
  // N rank threads (each its own node/cache — the cross-node case) hammer
  // a shared plain counter guarded only by the bakery lock. The counter
  // itself lives in host memory so any exclusion failure shows up as a
  // lost update.
  constexpr int kThreads = 4;
  constexpr int kIters = 200;
  Rank bootstrap = make_rank();
  const auto lock = BakeryLock::format(*bootstrap.acc, 0, kThreads);

  long long counter = 0;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rank r = make_rank();
      for (int i = 0; i < kIters; ++i) {
        BakeryLock::Guard guard(lock, *r.acc, static_cast<std::size_t>(t));
        const long long seen = counter;
        std::this_thread::yield();  // widen the race window
        counter = seen + 1;
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, static_cast<long long>(kThreads) * kIters);
}

TEST_F(BakeryLockTest, LockHandoffPropagatesVirtualTime) {
  Rank a = make_rank();
  Rank b = make_rank();
  const auto lock = BakeryLock::format(*a.acc, 0, 2);

  a.clock.advance(100000);
  lock.lock(*a.acc, 0);
  lock.unlock(*a.acc, 0);

  lock.lock(*b.acc, 1);
  // B acquired after A's critical section: B's clock must reflect it.
  EXPECT_GE(b.clock.now(), 100000.0);
  lock.unlock(*b.acc, 1);
}

TEST_F(BakeryLockTest, CrossNodeVisibilityThroughLock) {
  // The canonical use: A mutates shared cached state under the lock and
  // flushes; B then reads it under the lock.
  Rank a = make_rank();
  Rank b = make_rank();
  const auto lock = BakeryLock::format(*a.acc, 0, 2);
  constexpr std::uint64_t kData = 4096;

  lock.lock(*a.acc, 0);
  const std::byte payload[8] = {std::byte{1}, std::byte{2}, std::byte{3},
                                std::byte{4}, std::byte{5}, std::byte{6},
                                std::byte{7}, std::byte{8}};
  a.acc->coherent_write(kData, payload);
  lock.unlock(*a.acc, 0);

  lock.lock(*b.acc, 1);
  std::byte got[8];
  b.acc->coherent_read(kData, got);
  lock.unlock(*b.acc, 1);
  EXPECT_EQ(std::memcmp(got, payload, 8), 0);
}

}  // namespace
}  // namespace cmpi::arena
