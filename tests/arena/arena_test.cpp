#include "arena/arena.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/align.hpp"
#include "common/units.hpp"

namespace cmpi::arena {
namespace {

class ArenaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = check_ok(cxlsim::DaxDevice::create(16_MiB));
    cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    acc_ = std::make_unique<cxlsim::Accessor>(*device_, *cache_, clock_);
  }

  Arena::Params small_params() {
    Arena::Params p;
    p.levels = 4;
    p.level1_buckets = 61;
    p.max_participants = 8;
    return p;
  }

  Arena make_arena() {
    return check_ok(
        Arena::format(*acc_, 0, 4_MiB, /*participant=*/0, small_params()));
  }

  simtime::VClock clock_;
  std::unique_ptr<cxlsim::DaxDevice> device_;
  std::unique_ptr<cxlsim::CacheSim> cache_;
  std::unique_ptr<cxlsim::Accessor> acc_;
};

TEST_F(ArenaTest, FormatAndAttach) {
  Arena a = make_arena();
  EXPECT_EQ(a.index().levels(), 4u);
  Arena b = check_ok(Arena::attach(*acc_, 0, 1));
  EXPECT_EQ(b.index().levels(), 4u);
  EXPECT_EQ(b.objects_offset(), a.objects_offset());
}

TEST_F(ArenaTest, AttachToUnformattedBaseFails) {
  EXPECT_EQ(Arena::attach(*acc_, 8_MiB, 0).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(ArenaTest, CreateReturnsAlignedObject) {
  Arena a = make_arena();
  const auto handle = check_ok(a.create("queue_0", 100));
  EXPECT_EQ(handle.size, 100u);
  EXPECT_TRUE(is_aligned(handle.arena_offset, kCacheLineSize));
  EXPECT_EQ(handle.pool_offset, a.base() + handle.arena_offset);
  EXPECT_GE(handle.arena_offset, a.objects_offset());
}

TEST_F(ArenaTest, CreateDuplicateFails) {
  Arena a = make_arena();
  auto h = check_ok(a.create("dup", 64));
  EXPECT_EQ(a.create("dup", 64).status().code(), ErrorCode::kAlreadyExists);
  check_ok(a.destroy(h));
}

TEST_F(ArenaTest, OpenFindsCreatedObject) {
  Arena a = make_arena();
  const auto created = check_ok(a.create("rma_window", 4096));
  auto opened = check_ok(a.open("rma_window"));
  EXPECT_EQ(opened.arena_offset, created.arena_offset);
  EXPECT_EQ(opened.size, 4096u);
}

TEST_F(ArenaTest, OpenMissingObjectFails) {
  Arena a = make_arena();
  EXPECT_EQ(a.open("ghost").status().code(), ErrorCode::kNotFound);
}

TEST_F(ArenaTest, OpenFromAnotherNodeSeesObject) {
  Arena a = make_arena();
  check_ok(a.create("shared", 256));

  // A different node: own cache, own accessor, attach to same base.
  simtime::VClock clock_b;
  cxlsim::CacheSim cache_b(*device_);
  cxlsim::Accessor acc_b(*device_, cache_b, clock_b);
  Arena b = check_ok(Arena::attach(acc_b, 0, 1));
  const auto handle = check_ok(b.open("shared"));
  EXPECT_EQ(handle.size, 256u);
}

TEST_F(ArenaTest, DestroyMakesNameReusableAndReclaimsSpace) {
  Arena a = make_arena();
  const std::uint64_t before = a.free_bytes();
  auto h = check_ok(a.create("temp", 1000));
  EXPECT_LT(a.free_bytes(), before);
  check_ok(a.destroy(h));
  EXPECT_EQ(a.free_bytes(), before);
  EXPECT_EQ(a.open("temp").status().code(), ErrorCode::kNotFound);
  auto h2 = check_ok(a.create("temp", 1000));  // name reusable
  check_ok(a.destroy(h2));
}

TEST_F(ArenaTest, CloseDropsReference) {
  Arena a = make_arena();
  auto h = check_ok(a.create("obj", 64));
  auto h2 = check_ok(a.open("obj"));
  check_ok(a.close(h2));
  EXPECT_EQ(a.close(h2).code(), ErrorCode::kClosed);  // double close
  check_ok(a.destroy(h));
}

TEST_F(ArenaTest, DestroyTwiceFails) {
  Arena a = make_arena();
  auto h = check_ok(a.create("obj", 64));
  auto h2 = check_ok(a.open("obj"));
  check_ok(a.destroy(h));
  EXPECT_EQ(a.destroy(h2).code(), ErrorCode::kNotFound);
}

TEST_F(ArenaTest, RejectsBadNames) {
  Arena a = make_arena();
  EXPECT_EQ(a.create("", 64).status().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(a.create(std::string(Arena::kMaxNameLen + 1, 'x'), 64)
                .status()
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(a.create("ok", 0).status().code(), ErrorCode::kInvalidArgument);
}

TEST_F(ArenaTest, MaxLengthNameWorks) {
  Arena a = make_arena();
  const std::string name(Arena::kMaxNameLen, 'n');
  auto h = check_ok(a.create(name, 64));
  auto o = check_ok(a.open(name));
  EXPECT_EQ(o.arena_offset, h.arena_offset);
}

TEST_F(ArenaTest, ExhaustionReportsOutOfMemory) {
  Arena a = make_arena();
  std::vector<ObjectHandle> handles;
  for (int i = 0;; ++i) {
    auto r = a.create("big" + std::to_string(i), 1_MiB);
    if (!r.is_ok()) {
      EXPECT_EQ(r.status().code(), ErrorCode::kOutOfMemory);
      break;
    }
    handles.push_back(std::move(r).value());
    ASSERT_LT(i, 100) << "allocator never exhausted";
  }
  for (auto& h : handles) {
    check_ok(a.destroy(h));
  }
}

TEST_F(ArenaTest, HashCapacityExceededWhenAllLevelsTaken) {
  // With 4 levels a name has 4 candidate slots; filling the arena with
  // many names must eventually hit per-name capacity, not loop forever.
  Arena::Params tiny;
  tiny.levels = 2;
  tiny.level1_buckets = 5;  // levels: 5 + 3 = 8 slots total
  tiny.max_participants = 2;
  Arena a = check_ok(Arena::format(*acc_, 8_MiB, 1_MiB, 0, tiny));
  int created = 0;
  bool saw_capacity = false;
  for (int i = 0; i < 64 && !saw_capacity; ++i) {
    auto r = a.create("o" + std::to_string(i), 64);
    if (r.is_ok()) {
      ++created;
    } else {
      EXPECT_EQ(r.status().code(), ErrorCode::kCapacityExceeded);
      saw_capacity = true;
    }
  }
  EXPECT_TRUE(saw_capacity);
  EXPECT_LE(created, 8);
  EXPECT_GT(created, 0);
}

TEST_F(ArenaTest, FreeListCoalescesAdjacentBlocks) {
  Arena a = make_arena();
  const std::uint64_t baseline = a.free_bytes();
  auto h1 = check_ok(a.create("a", 64_KiB));
  auto h2 = check_ok(a.create("b", 64_KiB));
  auto h3 = check_ok(a.create("c", 64_KiB));
  // Free middle, then left, then right: must coalesce back to one block
  // able to satisfy the original span.
  check_ok(a.destroy(h2));
  check_ok(a.destroy(h1));
  check_ok(a.destroy(h3));
  EXPECT_EQ(a.free_bytes(), baseline);
  auto big = check_ok(a.create("big", 192_KiB));
  check_ok(a.destroy(big));
}

TEST_F(ArenaTest, ObjectDataSurvivesOtherAllocations) {
  Arena a = make_arena();
  auto h = check_ok(a.create("data", 128));
  const std::byte payload[4] = {std::byte{0xAA}, std::byte{0xBB},
                                std::byte{0xCC}, std::byte{0xDD}};
  acc_->coherent_write(h.pool_offset, payload);
  for (int i = 0; i < 20; ++i) {
    auto t = check_ok(a.create("noise" + std::to_string(i), 4096));
    check_ok(a.destroy(t));
  }
  std::byte got[4];
  acc_->coherent_read(h.pool_offset, got);
  EXPECT_EQ(std::memcmp(got, payload, 4), 0);
}

TEST_F(ArenaTest, UsedSlotsTracksLiveObjects) {
  Arena a = make_arena();
  EXPECT_EQ(a.used_slots(), 0u);
  auto h1 = check_ok(a.create("x", 64));
  auto h2 = check_ok(a.create("y", 64));
  EXPECT_EQ(a.used_slots(), 2u);
  check_ok(a.destroy(h1));
  EXPECT_EQ(a.used_slots(), 1u);
  check_ok(a.destroy(h2));
}

TEST_F(ArenaTest, TooSmallArenaRejected) {
  Arena::Params p = small_params();
  EXPECT_FALSE(Arena::format(*acc_, 0, 1024, 0, p).is_ok());
}

TEST_F(ArenaTest, MetadataFootprintIsConsistent) {
  const auto p = small_params();
  Arena a = make_arena();
  EXPECT_GE(a.objects_offset(), Arena::metadata_footprint(p) -
                                    kCacheLineSize);
  EXPECT_LE(a.objects_offset(), Arena::metadata_footprint(p) +
                                    kCacheLineSize);
}

TEST_F(ArenaTest, ConcurrentCreatesFromManyNodes) {
  // Each thread is a rank on its own node creating distinct objects; all
  // creations must succeed and be mutually visible afterwards.
  Arena bootstrap = make_arena();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      simtime::VClock clock;
      cxlsim::CacheSim cache(*device_);
      cxlsim::Accessor acc(*device_, cache, clock);
      Arena arena = check_ok(Arena::attach(acc, 0, t + 1));
      for (int i = 0; i < kPerThread; ++i) {
        check_ok(arena.create("t" + std::to_string(t) + "_" +
                              std::to_string(i), 256));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(bootstrap.used_slots(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      EXPECT_TRUE(bootstrap
                      .open("t" + std::to_string(t) + "_" + std::to_string(i))
                      .is_ok());
    }
  }
}

// --- Free-list fsck on attach (bounded walk, kCorruptPool) -------------
//
// A host dying inside free_locked can leave a torn chain behind. attach's
// bounded validate_free_list walk must refuse the arena instead of letting
// the next allocator walk hang or wander out of the region. Each test
// formats a healthy arena, corrupts the chain with non-temporal stores
// (immediately visible, no cache involved) and attaches through a fresh
// cold-cache accessor, like a node arriving after the crash.
//
// On-pool layout facts the corruptions rely on: Header::free_head is the
// 11th u64 (byte 80); FreeBlock is {magic, size, next} at +0/+8/+16.

class ArenaFsckTest : public ArenaTest {
 protected:
  static constexpr std::uint64_t kFreeHeadOffset = 80;

  void SetUp() override {
    ArenaTest::SetUp();
    make_arena();  // formatted; the Arena view itself is not needed
    cache_b_ = std::make_unique<cxlsim::CacheSim>(*device_);
    acc_b_ = std::make_unique<cxlsim::Accessor>(*device_, *cache_b_, clock_b_);
    free_head_ = acc_b_->nt_load_u64(kFreeHeadOffset);
    ASSERT_NE(free_head_, 0u) << "fresh arena must have a free block";
  }

  ErrorCode attach_code() {
    return Arena::attach(*acc_b_, 0, /*participant=*/1).status().code();
  }

  simtime::VClock clock_b_;
  std::unique_ptr<cxlsim::CacheSim> cache_b_;
  std::unique_ptr<cxlsim::Accessor> acc_b_;
  std::uint64_t free_head_ = 0;  // base-relative == pool offset (base 0)
};

TEST_F(ArenaFsckTest, AttachRejectsSelfReferencingChain) {
  // next -> itself: the classic torn-coalesce loop. The address-order
  // check (at <= prev) must catch it long before the step bound.
  acc_b_->nt_store_u64(free_head_ + 16, free_head_);
  EXPECT_EQ(attach_code(), ErrorCode::kCorruptPool);
}

TEST_F(ArenaFsckTest, AttachRejectsBadFreeBlockMagic) {
  acc_b_->nt_store_u64(free_head_ + 0, 0x0BADF00DULL);
  EXPECT_EQ(attach_code(), ErrorCode::kCorruptPool);
}

TEST_F(ArenaFsckTest, AttachRejectsHeadOutsideObjectRegion) {
  Arena view = check_ok(Arena::attach(*acc_b_, 0, 1));
  acc_b_->nt_store_u64(kFreeHeadOffset,
                       view.objects_offset() + view.objects_size());
  EXPECT_EQ(attach_code(), ErrorCode::kCorruptPool);
}

TEST_F(ArenaFsckTest, AttachRejectsImpossibleBlockSize) {
  // A size that runs past the end of the object region.
  acc_b_->nt_store_u64(free_head_ + 8, 64_MiB);
  EXPECT_EQ(attach_code(), ErrorCode::kCorruptPool);
}

TEST_F(ArenaFsckTest, FsckMessageNamesOffsetAndOwningRegion) {
  // Multi-tenant triage regression: the kCorruptPool message must carry
  // the corrupt slot's POOL-ABSOLUTE offset and the owning arena's
  // base/object region, so an operator can attribute the damage to one
  // tenant without replaying the walk. Use a nonzero base so absolute
  // and arena-relative offsets actually differ.
  const std::uint64_t kBase = 8_MiB;
  check_ok(
      Arena::format(*acc_, kBase, 4_MiB, /*participant=*/0, small_params())
          .status());
  const std::uint64_t rel_head = acc_b_->nt_load_u64(kBase + kFreeHeadOffset);
  ASSERT_NE(rel_head, 0u);
  acc_b_->nt_store_u64(kBase + rel_head + 0, 0x0BADF00DULL);  // break magic

  const Status verdict = Arena::attach(*acc_b_, kBase, 1).status();
  ASSERT_EQ(verdict.code(), ErrorCode::kCorruptPool);
  const std::string msg(verdict.message());
  char expect_at[32];
  std::snprintf(expect_at, sizeof expect_at, "0x%llx",
                static_cast<unsigned long long>(kBase + rel_head));
  EXPECT_NE(msg.find(expect_at), std::string::npos)
      << "missing pool-absolute slot offset in: " << msg;
  EXPECT_NE(msg.find("arena base 0x800000"), std::string::npos)
      << "missing owning arena base in: " << msg;
  EXPECT_NE(msg.find("object region [0x"), std::string::npos)
      << "missing owning object region in: " << msg;
  EXPECT_NE(msg.find("bad magic"), std::string::npos) << msg;
}

TEST_F(ArenaFsckTest, HealthyArenaStillAttaches) {
  // Control: the fsck must not reject an intact chain, including after
  // real allocator traffic fragments it.
  Arena view = check_ok(Arena::attach(*acc_b_, 0, 1));
  auto a = check_ok(view.create("frag_a", 4096));
  auto b = check_ok(view.create("frag_b", 4096));
  check_ok(view.destroy(a));  // hole before the tail block
  EXPECT_TRUE(Arena::attach(*acc_b_, 0, 2).is_ok());
  check_ok(view.destroy(b));
}

}  // namespace
}  // namespace cmpi::arena
