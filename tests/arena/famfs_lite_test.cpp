#include "arena/famfs_lite.hpp"

#include <gtest/gtest.h>

#include "arena/arena.hpp"
#include "common/units.hpp"

namespace cmpi::arena {
namespace {

class FamfsLiteTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = check_ok(cxlsim::DaxDevice::create(16_MiB));
    master_cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    client_cache_ = std::make_unique<cxlsim::CacheSim>(*device_);
    master_acc_ = std::make_unique<cxlsim::Accessor>(*device_,
                                                     *master_cache_,
                                                     master_clock_);
    client_acc_ = std::make_unique<cxlsim::Accessor>(*device_,
                                                     *client_cache_,
                                                     client_clock_);
  }

  simtime::VClock master_clock_;
  simtime::VClock client_clock_;
  std::unique_ptr<cxlsim::DaxDevice> device_;
  std::unique_ptr<cxlsim::CacheSim> master_cache_;
  std::unique_ptr<cxlsim::CacheSim> client_cache_;
  std::unique_ptr<cxlsim::Accessor> master_acc_;
  std::unique_ptr<cxlsim::Accessor> client_acc_;
};

TEST_F(FamfsLiteTest, MasterCreatesClientOpens) {
  auto master = check_ok(FamfsLite::format_master(*master_acc_, 0, 8_MiB));
  const auto created = check_ok(master.create("shared_data", 4096));
  EXPECT_EQ(created.size, 4096u);

  auto client = check_ok(FamfsLite::attach_client(*client_acc_, 0));
  const auto opened = check_ok(client.open("shared_data"));
  EXPECT_EQ(opened.pool_offset, created.pool_offset);
  EXPECT_EQ(opened.size, 4096u);
}

TEST_F(FamfsLiteTest, ClientCannotCreate) {
  // The §3.1 restriction that disqualifies the famfs design for MPI: a
  // non-master rank cannot create the SHM object it needs.
  check_ok(FamfsLite::format_master(*master_acc_, 0, 8_MiB));
  auto client = check_ok(FamfsLite::attach_client(*client_acc_, 0));
  const auto result = client.create("my_rma_window", 4096);
  EXPECT_EQ(result.status().code(), ErrorCode::kUnsupported);
}

TEST_F(FamfsLiteTest, ClientCannotRemove) {
  auto master = check_ok(FamfsLite::format_master(*master_acc_, 0, 8_MiB));
  check_ok(master.create("f", 64));
  auto client = check_ok(FamfsLite::attach_client(*client_acc_, 0));
  EXPECT_EQ(client.remove("f").code(), ErrorCode::kUnsupported);
}

TEST_F(FamfsLiteTest, ArenaAllowsWhatFamfsForbids) {
  // The same "client" rank CAN create objects in the CXL SHM Arena.
  Arena::Params params;
  params.levels = 3;
  params.level1_buckets = 31;
  params.max_participants = 4;
  check_ok(Arena::format(*master_acc_, 0, 8_MiB, 0, params));
  auto client_arena = check_ok(Arena::attach(*client_acc_, 0, 1));
  EXPECT_TRUE(client_arena.create("my_rma_window", 4096).is_ok());
}

TEST_F(FamfsLiteTest, DataFlowsThroughFamfsFiles) {
  auto master = check_ok(FamfsLite::format_master(*master_acc_, 0, 8_MiB));
  const auto file = check_ok(master.create("payload", 256));
  const std::byte data[16] = {std::byte{0xAA}, std::byte{0xBB}};
  master_acc_->coherent_write(file.pool_offset, data);

  auto client = check_ok(FamfsLite::attach_client(*client_acc_, 0));
  const auto opened = check_ok(client.open("payload"));
  std::byte got[16] = {};
  client_acc_->coherent_read(opened.pool_offset, got);
  EXPECT_EQ(std::to_integer<int>(got[0]), 0xAA);
  EXPECT_EQ(std::to_integer<int>(got[1]), 0xBB);
}

TEST_F(FamfsLiteTest, DuplicateAndMissingNames) {
  auto master = check_ok(FamfsLite::format_master(*master_acc_, 0, 8_MiB));
  check_ok(master.create("dup", 64));
  EXPECT_EQ(master.create("dup", 64).status().code(),
            ErrorCode::kAlreadyExists);
  EXPECT_EQ(master.open("ghost").status().code(), ErrorCode::kNotFound);
  EXPECT_EQ(master.remove("ghost").code(), ErrorCode::kNotFound);
}

TEST_F(FamfsLiteTest, RemoveFreesNameButNotSpace) {
  auto master = check_ok(FamfsLite::format_master(*master_acc_, 0, 8_MiB));
  auto first = check_ok(master.create("temp", 4096));
  check_ok(master.remove("temp"));
  EXPECT_EQ(master.files_in_use(), 0u);
  auto second = check_ok(master.create("temp", 4096));
  // Append-only extents: the new file gets fresh space.
  EXPECT_GT(second.pool_offset, first.pool_offset);
}

TEST_F(FamfsLiteTest, AttachWithoutFormatFails) {
  EXPECT_EQ(FamfsLite::attach_client(*client_acc_, 8_MiB).status().code(),
            ErrorCode::kNotFound);
}

TEST_F(FamfsLiteTest, TableCapacity) {
  auto master = check_ok(FamfsLite::format_master(*master_acc_, 0, 8_MiB));
  for (std::size_t i = 0; i < FamfsLite::kMaxFiles; ++i) {
    check_ok(master.create("f" + std::to_string(i), 64));
  }
  EXPECT_EQ(master.create("overflow", 64).status().code(),
            ErrorCode::kCapacityExceeded);
}

}  // namespace
}  // namespace cmpi::arena
