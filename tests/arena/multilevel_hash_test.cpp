#include "arena/multilevel_hash.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/primes.hpp"

namespace cmpi::arena {
namespace {

TEST(MultilevelHash, LevelCountsAreDistinctDescendingPrimes) {
  const auto index = check_ok(MultilevelHash::create(5, 1000));
  ASSERT_EQ(index.levels(), 5u);
  std::size_t prev = 1001;
  for (std::size_t l = 0; l < 5; ++l) {
    const std::size_t count = index.level_buckets(l);
    EXPECT_TRUE(is_prime(count));
    EXPECT_LT(count, prev);
    prev = count;
  }
}

TEST(MultilevelHash, PaperConfigMatchesSection37) {
  const auto index = MultilevelHash::paper_config();
  EXPECT_EQ(index.levels(), 10u);
  EXPECT_EQ(index.level_buckets(0), 199999u);
  EXPECT_EQ(index.level_buckets(9), 199873u);
  EXPECT_EQ(index.total_slots(), 1999260u);
}

TEST(MultilevelHash, TotalSlotsIsSumOfLevels) {
  const auto index = check_ok(MultilevelHash::create(4, 100));
  std::size_t sum = 0;
  for (std::size_t l = 0; l < 4; ++l) {
    sum += index.level_buckets(l);
  }
  EXPECT_EQ(index.total_slots(), sum);
}

TEST(MultilevelHash, SlotsAreWithinLevelRanges) {
  const auto index = check_ok(MultilevelHash::create(3, 50));
  std::size_t level_start = 0;
  for (std::size_t l = 0; l < 3; ++l) {
    for (int k = 0; k < 100; ++k) {
      const std::size_t slot = index.slot_of("key" + std::to_string(k), l);
      EXPECT_GE(slot, level_start);
      EXPECT_LT(slot, level_start + index.level_buckets(l));
    }
    level_start += index.level_buckets(l);
  }
}

TEST(MultilevelHash, ProbeSequenceIsOnePerLevel) {
  const auto index = check_ok(MultilevelHash::create(6, 500));
  const auto seq = index.probe_sequence("window_7");
  ASSERT_EQ(seq.size(), 6u);
  std::set<std::size_t> unique(seq.begin(), seq.end());
  // Probes live in disjoint level ranges, so they are all distinct.
  EXPECT_EQ(unique.size(), 6u);
}

TEST(MultilevelHash, Deterministic) {
  const auto a = check_ok(MultilevelHash::create(4, 200));
  const auto b = check_ok(MultilevelHash::create(4, 200));
  EXPECT_EQ(a.probe_sequence("obj"), b.probe_sequence("obj"));
}

TEST(MultilevelHash, LevelsUseIndependentHashes) {
  // Keys colliding at level 0 should usually separate at level 1.
  const auto index = check_ok(MultilevelHash::create(2, 101));
  int level0_collisions = 0;
  int both_collide = 0;
  for (int i = 0; i < 500; ++i) {
    const std::string a = "x" + std::to_string(i);
    const std::string b = "y" + std::to_string(i);
    if (index.slot_of(a, 0) == index.slot_of(b, 0)) {
      ++level0_collisions;
      if (index.slot_of(a, 1) == index.slot_of(b, 1)) {
        ++both_collide;
      }
    }
  }
  EXPECT_GT(level0_collisions, 0);
  EXPECT_LT(both_collide, level0_collisions);
}

TEST(MultilevelHash, RejectsDegenerateParams) {
  EXPECT_FALSE(MultilevelHash::create(0, 100).is_ok());
  EXPECT_FALSE(MultilevelHash::create(4, 3).is_ok());
}

}  // namespace
}  // namespace cmpi::arena
