#include "core/communicator.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/cmpi.hpp"

namespace cmpi {
namespace {

runtime::UniverseConfig config_for(unsigned nodes, unsigned per_node) {
  runtime::UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  return cfg;
}

TEST(Communicator, SplitByParity) {
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    auto comm = mpi.split(mpi.rank() % 2, /*key=*/mpi.rank());
    ASSERT_TRUE(comm.has_value());
    EXPECT_EQ(comm->size(), 2);
    EXPECT_EQ(comm->rank(), mpi.rank() / 2);
    EXPECT_EQ(comm->world_rank(comm->rank()), mpi.rank());
  });
}

TEST(Communicator, KeyControlsOrdering) {
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    // Reverse ordering: higher world rank gets lower key.
    auto comm = mpi.split(0, /*key=*/mpi.size() - mpi.rank());
    ASSERT_TRUE(comm.has_value());
    EXPECT_EQ(comm->rank(), mpi.size() - 1 - mpi.rank());
  });
}

TEST(Communicator, NegativeColorReturnsNullopt) {
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    auto comm = mpi.split(mpi.rank() == 0 ? -1 : 7, 0);
    if (mpi.rank() == 0) {
      EXPECT_FALSE(comm.has_value());
    } else {
      ASSERT_TRUE(comm.has_value());
      EXPECT_EQ(comm->size(), mpi.size() - 1);
    }
  });
}

TEST(Communicator, PointToPointWithinComm) {
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    auto comm = mpi.split(mpi.rank() % 2, mpi.rank());
    ASSERT_TRUE(comm.has_value());
    const std::uint64_t value = 0x1234u + static_cast<std::uint64_t>(
                                              mpi.rank());
    if (comm->rank() == 0) {
      check_ok(comm->send(1, 5, std::as_bytes(std::span(&value, 1))));
    } else {
      std::uint64_t got = 0;
      const RecvInfo info = check_ok(
          comm->recv(0, 5, std::as_writable_bytes(std::span(&got, 1))));
      EXPECT_EQ(info.source, 0);  // comm-local rank
      EXPECT_EQ(info.tag, 5);
      // Partner is the parity sibling two world ranks below.
      EXPECT_EQ(got, 0x1234u + static_cast<std::uint64_t>(mpi.rank() - 2));
    }
  });
}

TEST(Communicator, TagSpacesAreIsolated) {
  // The same (src, dst, tag) triple on two different communicators must
  // not cross-match. World ranks 0 and 2 are rank 0/1 in the even comm;
  // send the same tag through two comms and through the world, and check
  // every payload lands where it was addressed.
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    auto even = mpi.split(mpi.rank() % 2 == 0 ? 1 : -1, mpi.rank());
    auto all = mpi.split(0, mpi.rank());
    ASSERT_TRUE(all.has_value());
    if (mpi.rank() == 0) {
      const std::uint64_t via_even = 111;
      const std::uint64_t via_all = 222;
      const std::uint64_t via_world = 333;
      check_ok(even->send(1, 7, std::as_bytes(std::span(&via_even, 1))));
      check_ok(all->send(2, 7, std::as_bytes(std::span(&via_all, 1))));
      check_ok(mpi.send(2, 7, std::as_bytes(std::span(&via_world, 1))));
    } else if (mpi.rank() == 2) {
      std::uint64_t from_world = 0;
      std::uint64_t from_all = 0;
      std::uint64_t from_even = 0;
      // Receive in an order different from the send order.
      check_ok(mpi.recv(0, 7,
                        std::as_writable_bytes(std::span(&from_world, 1))));
      check_ok(even->recv(0, 7,
                          std::as_writable_bytes(std::span(&from_even, 1))));
      check_ok(all->recv(0, 7,
                         std::as_writable_bytes(std::span(&from_all, 1))));
      EXPECT_EQ(from_even, 111u);
      EXPECT_EQ(from_all, 222u);
      EXPECT_EQ(from_world, 333u);
    }
    mpi.barrier();
  });
}

TEST(Communicator, CollectivesWithinComm) {
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    auto comm = mpi.split(mpi.rank() % 2, mpi.rank());
    ASSERT_TRUE(comm.has_value());
    // allreduce over comm members only.
    std::vector<std::int64_t> v{mpi.rank()};
    comm->allreduce(v, ReduceOp::kSum);
    // Even comm: 0 + 2; odd comm: 1 + 3.
    EXPECT_EQ(v[0], mpi.rank() % 2 == 0 ? 2 : 4);
    // allgather over comm.
    std::vector<std::int64_t> mine{mpi.rank() * 10};
    std::vector<std::int64_t> all(2);
    comm->allgather(std::as_bytes(std::span(mine)),
                    std::as_writable_bytes(std::span(all)));
    if (mpi.rank() % 2 == 0) {
      EXPECT_EQ(all, (std::vector<std::int64_t>{0, 20}));
    } else {
      EXPECT_EQ(all, (std::vector<std::int64_t>{10, 30}));
    }
    comm->barrier();
  });
}

TEST(Communicator, WindowOverSubCommunicator) {
  // §3.2's flow on a communicator: the root creates the object and
  // broadcasts the name; members use group-dense ranks.
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    auto comm = mpi.split(mpi.rank() % 2, mpi.rank());
    ASSERT_TRUE(comm.has_value());
    rma::Window win = comm->create_window(ctx, 256);
    EXPECT_EQ(win.nranks(), 2);
    EXPECT_EQ(win.rank(), comm->rank());
    win.fence();
    // Ring put within the communicator.
    const std::uint64_t value = 100u + static_cast<std::uint64_t>(
                                           mpi.rank());
    win.put((win.rank() + 1) % 2, 0, std::as_bytes(std::span(&value, 1)));
    win.fence();
    std::uint64_t got = 0;
    win.read_local(0, std::as_writable_bytes(std::span(&got, 1)));
    // My comm-sibling differs by 2 world ranks.
    const int sibling_world = (mpi.rank() + 2) % 4;
    EXPECT_EQ(got, 100u + static_cast<std::uint64_t>(sibling_world));
    win.free();
    comm->barrier();
  });
}

TEST(Communicator, SequentialSplitsGetDistinctContexts) {
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    auto a = mpi.split(0, mpi.rank());
    auto b = mpi.split(0, mpi.rank());
    ASSERT_TRUE(a.has_value() && b.has_value());
    EXPECT_NE(a->context_id(), b->context_id());
  });
}

}  // namespace
}  // namespace cmpi
