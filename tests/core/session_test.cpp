#include "core/cmpi.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <tuple>
#include <vector>

namespace cmpi {
namespace {

runtime::UniverseConfig config_for(unsigned nodes, unsigned per_node) {
  runtime::UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  return cfg;
}

TEST(Session, RankAndSize) {
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    EXPECT_EQ(mpi.rank(), ctx.rank());
    EXPECT_EQ(mpi.size(), 4);
  });
}

TEST(Session, TypedSendRecv) {
  runtime::Universe universe(config_for(2, 1));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    if (mpi.rank() == 0) {
      const std::vector<double> values{1.5, 2.5, 3.5};
      check_ok(mpi.send_values<double>(1, 0, values));
    } else {
      std::vector<double> values(3);
      const RecvInfo info =
          check_ok(mpi.recv_values<double>(0, 0, values));
      EXPECT_EQ(info.bytes, 24u);
      EXPECT_DOUBLE_EQ(values[1], 2.5);
    }
  });
}

TEST(Session, WindowThroughSession) {
  runtime::Universe universe(config_for(2, 1));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    rma::Window win = mpi.create_window("session_win", 256);
    win.fence();
    const std::uint64_t value = 0xABCD + static_cast<std::uint64_t>(mpi.rank());
    win.put((mpi.rank() + 1) % 2, 0,
            std::as_bytes(std::span(&value, 1)));
    win.fence();
    std::uint64_t got = 0;
    win.read_local(0, std::as_writable_bytes(std::span(&got, 1)));
    EXPECT_EQ(got, 0xABCDu + static_cast<std::uint64_t>(1 - mpi.rank()));
    win.free();
  });
}

TEST(Session, CollectivesThroughSession) {
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    // bcast
    std::vector<std::uint32_t> data(4);
    if (mpi.rank() == 2) {
      std::iota(data.begin(), data.end(), 100u);
    }
    mpi.bcast(2, std::as_writable_bytes(std::span(data)));
    EXPECT_EQ(data[3], 103u);
    // allreduce int64
    std::vector<std::int64_t> v{mpi.rank() + 1};
    mpi.allreduce(v, ReduceOp::kSum);
    EXPECT_EQ(v[0], 1 + 2 + 3 + 4);
    // barrier + allgather
    mpi.barrier();
    std::vector<std::uint32_t> mine{static_cast<std::uint32_t>(mpi.rank())};
    std::vector<std::uint32_t> all(4);
    mpi.allgather(std::as_bytes(std::span(mine)),
                  std::as_writable_bytes(std::span(all)));
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)],
                static_cast<std::uint32_t>(r));
    }
  });
}

TEST(Session, VirtualTimeIsMonotonicAndPositive) {
  runtime::Universe universe(config_for(2, 1));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const double t0 = mpi.now_ns();
    mpi.barrier();
    const double t1 = mpi.now_ns();
    EXPECT_GE(t1, t0);
    EXPECT_GT(t1, 0.0);
  });
}

TEST(Session, PipelineAcrossRanks) {
  // rank 0 -> 1 -> 2 -> 3 pipeline, each stage transforms the data.
  runtime::Universe universe(config_for(2, 2));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    std::int64_t value = 0;
    if (mpi.rank() == 0) {
      value = 1;
    } else {
      check_ok(mpi.recv_values<std::int64_t>(mpi.rank() - 1, 0,
                                             {&value, 1}));
    }
    value = value * 2 + mpi.rank();
    if (mpi.rank() + 1 < mpi.size()) {
      check_ok(mpi.send_values<std::int64_t>(mpi.rank() + 1, 0,
                                             {&value, 1}));
    } else {
      // ((1*2+0)*2+1)*2+2 ... : f0=2, f1=5, f2=12, f3=27
      EXPECT_EQ(value, 27);
    }
  });
}

TEST(Session, StatsTrackUserTraffic) {
  runtime::Universe universe(config_for(2, 1));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    std::vector<std::byte> data(1000);
    if (mpi.rank() == 0) {
      check_ok(mpi.send(1, 0, data));
      check_ok(mpi.ssend(1, 1, std::span(data).subspan(0, 100)));
      const auto& s = mpi.stats();
      EXPECT_EQ(s.messages_sent, 2u);
      EXPECT_EQ(s.bytes_sent, 1100u);
      EXPECT_EQ(s.messages_received, 0u);  // ssend ack is internal
      EXPECT_GT(s.wait_ns, 0.0);
    } else {
      std::vector<std::byte> inbox(1000);
      check_ok(mpi.recv(0, 0, inbox).status());
      check_ok(mpi.recv(0, 1, inbox).status());
      const auto& s = mpi.stats();
      EXPECT_EQ(s.messages_received, 2u);
      EXPECT_EQ(s.bytes_received, 1100u);
      EXPECT_EQ(s.messages_sent, 0u);  // the ack doesn't count
    }
  });
}

TEST(Session, StatsCountUnexpectedArrivals) {
  runtime::Universe universe(config_for(2, 1));
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    std::vector<std::byte> data(64);
    if (mpi.rank() == 0) {
      check_ok(mpi.send(1, 0, data));
      ctx.barrier();
    } else {
      // Drain the message as unexpected before posting the recv.
      ctx.doorbell().wait_until(
          [&] { return mpi.iprobe(0, 0).has_value(); });
      ctx.barrier();
      std::vector<std::byte> inbox(64);
      check_ok(mpi.recv(0, 0, inbox).status());
      EXPECT_EQ(mpi.stats().unexpected_messages, 1u);
    }
  });
}

// --- Parameterized sweep: protocol correctness across queue geometries ---

using Geometry = std::tuple<std::size_t /*cell*/, std::size_t /*ring cells*/,
                            std::size_t /*message*/>;

class SessionGeometry : public ::testing::TestWithParam<Geometry> {};

INSTANTIATE_TEST_SUITE_P(
    CellAndRingSweep, SessionGeometry,
    ::testing::Values(Geometry{64, 2, 1},           // minimal everything
                      Geometry{64, 2, 4096},        // heavy chunking
                      Geometry{1024, 4, 100000},    // uneven tail chunk
                      Geometry{16384, 8, 16384},    // exactly one cell
                      Geometry{16384, 8, 16385},    // one byte over
                      Geometry{65536, 8, 1048576},  // paper's tuned cell
                      Geometry{131072, 3, 524288}));

TEST_P(SessionGeometry, ExchangeSurvivesAnyGeometry) {
  const auto [cell, cells, message] = GetParam();
  runtime::UniverseConfig cfg = config_for(2, 1);
  cfg.cell_payload = cell;
  cfg.ring_cells = cells;
  runtime::Universe universe(cfg);
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    std::vector<std::byte> data(message);
    for (std::size_t i = 0; i < message; ++i) {
      data[i] = static_cast<std::byte>((i * 31 + 7) & 0xFF);
    }
    const int peer = 1 - mpi.rank();
    // Both directions at once (stresses bidirectional ring use).
    std::vector<std::byte> inbox(message);
    const RequestPtr r = mpi.irecv(peer, 5, inbox);
    const RequestPtr s = mpi.isend(peer, 5, data);
    check_ok(mpi.wait(s));
    check_ok(mpi.wait(r));
    EXPECT_EQ(inbox, data);
  });
}

}  // namespace
}  // namespace cmpi
