#include "coll/collectives.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

namespace cmpi::coll {
namespace {

runtime::UniverseConfig config_for(unsigned nodes, unsigned per_node) {
  runtime::UniverseConfig cfg;
  cfg.nodes = nodes;
  cfg.ranks_per_node = per_node;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  return cfg;
}

/// Rank counts to sweep: powers of two and odd counts (fold-in/out paths).
class CollectivesTest : public ::testing::TestWithParam<int> {};

INSTANTIATE_TEST_SUITE_P(RankCounts, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

TEST_P(CollectivesTest, BarrierCompletes) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  std::atomic<int> entered{0};
  std::atomic<bool> violated{false};
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    entered.fetch_add(1);
    barrier(ep);
    if (entered.load() != n) {
      violated = true;
    }
  });
  EXPECT_FALSE(violated.load());
}

TEST_P(CollectivesTest, BcastFromEveryRoot) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    for (int root = 0; root < n; ++root) {
      std::vector<std::uint32_t> data(50);
      if (ctx.rank() == root) {
        std::iota(data.begin(), data.end(),
                  static_cast<std::uint32_t>(root * 1000));
      }
      bcast(ep, root, std::as_writable_bytes(std::span(data)));
      std::vector<std::uint32_t> expected(50);
      std::iota(expected.begin(), expected.end(),
                static_cast<std::uint32_t>(root * 1000));
      EXPECT_EQ(data, expected) << "root " << root;
    }
  });
}

TEST_P(CollectivesTest, ReduceSumToEveryRoot) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    for (int root = 0; root < n; ++root) {
      std::vector<double> values(8);
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] = ctx.rank() + static_cast<double>(i);
      }
      reduce(ep, root, values, ReduceOp::kSum);
      if (ctx.rank() == root) {
        const double rank_sum = n * (n - 1) / 2.0;
        for (std::size_t i = 0; i < values.size(); ++i) {
          EXPECT_DOUBLE_EQ(values[i], rank_sum + n * static_cast<double>(i));
        }
      }
      barrier(ep);  // keep roots' rounds separated
    }
  });
}

TEST_P(CollectivesTest, AllreduceSum) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    std::vector<double> values{static_cast<double>(ctx.rank()), 1.0,
                               ctx.rank() * 2.0};
    allreduce(ep, values, ReduceOp::kSum);
    const double rank_sum = n * (n - 1) / 2.0;
    EXPECT_DOUBLE_EQ(values[0], rank_sum);
    EXPECT_DOUBLE_EQ(values[1], n);
    EXPECT_DOUBLE_EQ(values[2], 2 * rank_sum);
  });
}

TEST_P(CollectivesTest, AllreduceMinMaxInt64) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    std::vector<std::int64_t> mn{ctx.rank() + 10};
    allreduce(ep, mn, ReduceOp::kMin);
    EXPECT_EQ(mn[0], 10);
    std::vector<std::int64_t> mx{ctx.rank() + 10};
    allreduce(ep, mx, ReduceOp::kMax);
    EXPECT_EQ(mx[0], n - 1 + 10);
  });
}

TEST_P(CollectivesTest, RingAllgather) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    std::vector<std::uint64_t> mine{static_cast<std::uint64_t>(ctx.rank()),
                                    static_cast<std::uint64_t>(ctx.rank()) *
                                        7};
    std::vector<std::uint64_t> all(2 * static_cast<std::size_t>(n));
    allgather(ep, std::as_bytes(std::span(mine)),
              std::as_writable_bytes(std::span(all)));
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r)],
                static_cast<std::uint64_t>(r));
      EXPECT_EQ(all[2 * static_cast<std::size_t>(r) + 1],
                static_cast<std::uint64_t>(r) * 7);
    }
  });
}

TEST_P(CollectivesTest, BruckAllgatherMatchesRing) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    std::vector<std::uint64_t> mine{static_cast<std::uint64_t>(ctx.rank() * 3 + 1)};
    std::vector<std::uint64_t> via_bruck(static_cast<std::size_t>(n));
    allgather_bruck(ep, std::as_bytes(std::span(mine)),
                    std::as_writable_bytes(std::span(via_bruck)));
    for (int r = 0; r < n; ++r) {
      EXPECT_EQ(via_bruck[static_cast<std::size_t>(r)],
                static_cast<std::uint64_t>(r * 3 + 1));
    }
  });
}

TEST_P(CollectivesTest, Alltoall) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    // send[i] = rank * 100 + i; after alltoall, recv[i] = i * 100 + rank.
    std::vector<std::uint32_t> send(static_cast<std::size_t>(n));
    std::vector<std::uint32_t> recv(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      send[static_cast<std::size_t>(i)] =
          static_cast<std::uint32_t>(ctx.rank() * 100 + i);
    }
    alltoall(ep, std::as_bytes(std::span(send)),
             std::as_writable_bytes(std::span(recv)), sizeof(std::uint32_t));
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(recv[static_cast<std::size_t>(i)],
                static_cast<std::uint32_t>(i * 100 + ctx.rank()));
    }
  });
}

TEST_P(CollectivesTest, ReduceScatter) {
  const int n = GetParam();
  if (n == 1) {
    GTEST_SKIP() << "covered by the n==1 shortcut unit path";
  }
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    constexpr std::size_t kBlock = 4;
    // data[b][e] = rank + b * 10 + e.
    std::vector<double> data(kBlock * static_cast<std::size_t>(n));
    for (int b = 0; b < n; ++b) {
      for (std::size_t e = 0; e < kBlock; ++e) {
        data[static_cast<std::size_t>(b) * kBlock + e] =
            ctx.rank() + b * 10.0 + static_cast<double>(e);
      }
    }
    std::vector<double> out(kBlock);
    reduce_scatter(ep, data, out, ReduceOp::kSum);
    const double rank_sum = n * (n - 1) / 2.0;
    for (std::size_t e = 0; e < kBlock; ++e) {
      EXPECT_DOUBLE_EQ(out[e],
                       rank_sum + n * (ctx.rank() * 10.0 +
                                       static_cast<double>(e)))
          << "elem " << e;
    }
  });
}

TEST_P(CollectivesTest, GatherToEveryRoot) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    for (int root = 0; root < n; ++root) {
      std::vector<std::uint64_t> mine{
          static_cast<std::uint64_t>(ctx.rank() * 5 + 1),
          static_cast<std::uint64_t>(ctx.rank())};
      std::vector<std::uint64_t> all(2 * static_cast<std::size_t>(n));
      gather(ep, root, std::as_bytes(std::span(mine)),
             ctx.rank() == root ? std::as_writable_bytes(std::span(all))
                                : std::span<std::byte>{});
      if (ctx.rank() == root) {
        for (int r = 0; r < n; ++r) {
          EXPECT_EQ(all[2 * static_cast<std::size_t>(r)],
                    static_cast<std::uint64_t>(r * 5 + 1));
          EXPECT_EQ(all[2 * static_cast<std::size_t>(r) + 1],
                    static_cast<std::uint64_t>(r));
        }
      }
      barrier(ep);
    }
  });
}

TEST_P(CollectivesTest, ScatterFromEveryRoot) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    for (int root = 0; root < n; ++root) {
      std::vector<std::uint64_t> all;
      if (ctx.rank() == root) {
        for (int r = 0; r < n; ++r) {
          all.push_back(static_cast<std::uint64_t>(root * 100 + r));
        }
      }
      std::vector<std::uint64_t> mine(1);
      scatter(ep, root,
              ctx.rank() == root ? std::as_bytes(std::span(all))
                                 : std::span<const std::byte>{},
              std::as_writable_bytes(std::span(mine)));
      EXPECT_EQ(mine[0], static_cast<std::uint64_t>(root * 100 + ctx.rank()));
      barrier(ep);
    }
  });
}

TEST_P(CollectivesTest, GatherScatterRoundTrip) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    std::vector<double> mine{ctx.rank() * 1.5, ctx.rank() + 0.25};
    std::vector<double> all(2 * static_cast<std::size_t>(n));
    gather(ep, 0, std::as_bytes(std::span(mine)),
           ctx.rank() == 0 ? std::as_writable_bytes(std::span(all))
                           : std::span<std::byte>{});
    std::vector<double> back(2);
    scatter(ep, 0,
            ctx.rank() == 0 ? std::as_bytes(std::span(all))
                            : std::span<const std::byte>{},
            std::as_writable_bytes(std::span(back)));
    EXPECT_EQ(back, mine);
  });
}

TEST_P(CollectivesTest, InclusiveScanSum) {
  const int n = GetParam();
  runtime::Universe universe(config_for(static_cast<unsigned>(n), 1));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    std::vector<std::int64_t> v{ctx.rank() + 1, 10};
    scan(ep, v, ReduceOp::kMin);
    EXPECT_EQ(v[0], 1);   // min of 1..rank+1
    EXPECT_EQ(v[1], 10);
    std::vector<double> s{static_cast<double>(ctx.rank() + 1)};
    scan(ep, s, ReduceOp::kSum);
    const int r = ctx.rank() + 1;
    EXPECT_DOUBLE_EQ(s[0], r * (r + 1) / 2.0);  // 1 + 2 + ... + (rank+1)
  });
}

TEST(Collectives, LargePayloadAllreduce) {
  runtime::Universe universe(config_for(2, 2));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    std::vector<double> values(8192, 1.0);  // 64 KiB, chunked transfers
    allreduce(ep, values, ReduceOp::kSum);
    for (const double v : values) {
      ASSERT_DOUBLE_EQ(v, ctx.nranks());
    }
  });
}

TEST(Collectives, MixedSequenceStress) {
  // Back-to-back different collectives must not cross-match.
  runtime::Universe universe(config_for(2, 2));
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    for (int round = 0; round < 5; ++round) {
      std::vector<std::int64_t> v{ctx.rank() + round};
      allreduce(ep, v, ReduceOp::kSum);
      barrier(ep);
      std::vector<std::uint64_t> mine{static_cast<std::uint64_t>(v[0])};
      std::vector<std::uint64_t> all(static_cast<std::size_t>(ctx.nranks()));
      allgather(ep, std::as_bytes(std::span(mine)),
                std::as_writable_bytes(std::span(all)));
      for (const auto x : all) {
        const int n = ctx.nranks();
        EXPECT_EQ(x, static_cast<std::uint64_t>(n * (n - 1) / 2 + n * round));
      }
    }
  });
}

}  // namespace
}  // namespace cmpi::coll
