#include "coll/cxl_collectives.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "coll/collectives.hpp"
#include "p2p/endpoint.hpp"

namespace cmpi::coll {
namespace {

runtime::UniverseConfig config_for(int nranks) {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = static_cast<unsigned>((nranks + 1) / 2);
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  return cfg;
}

TEST(CxlCollectives, DirectAllgather) {
  runtime::Universe universe(config_for(4));
  universe.run([](runtime::RankCtx& ctx) {
    CxlCollectives cxl(ctx, "ag", 1024);
    std::vector<std::uint64_t> mine{
        static_cast<std::uint64_t>(ctx.rank() * 11 + 1)};
    std::vector<std::uint64_t> all(static_cast<std::size_t>(ctx.nranks()));
    cxl.allgather(std::as_bytes(std::span(mine)),
                  std::as_writable_bytes(std::span(all)));
    for (int r = 0; r < ctx.nranks(); ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)],
                static_cast<std::uint64_t>(r * 11 + 1));
    }
    cxl.free();
  });
}

TEST(CxlCollectives, DirectAllgatherRepeatsEpochs) {
  runtime::Universe universe(config_for(4));
  universe.run([](runtime::RankCtx& ctx) {
    CxlCollectives cxl(ctx, "ag_rep", 64);
    for (int round = 0; round < 5; ++round) {
      std::vector<std::uint64_t> mine{
          static_cast<std::uint64_t>(ctx.rank() + round * 100)};
      std::vector<std::uint64_t> all(static_cast<std::size_t>(ctx.nranks()));
      cxl.allgather(std::as_bytes(std::span(mine)),
                    std::as_writable_bytes(std::span(all)));
      for (int r = 0; r < ctx.nranks(); ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)],
                  static_cast<std::uint64_t>(r + round * 100))
            << "round " << round;
      }
    }
    cxl.free();
  });
}

TEST(CxlCollectives, DirectBcast) {
  runtime::Universe universe(config_for(4));
  universe.run([](runtime::RankCtx& ctx) {
    CxlCollectives cxl(ctx, "bc", 256);
    for (int root = 0; root < ctx.nranks(); ++root) {
      std::vector<std::uint32_t> data(16);
      if (ctx.rank() == root) {
        std::iota(data.begin(), data.end(),
                  static_cast<std::uint32_t>(root * 1000));
      }
      cxl.bcast(root, std::as_writable_bytes(std::span(data)));
      EXPECT_EQ(data[15], static_cast<std::uint32_t>(root * 1000 + 15));
    }
    cxl.free();
  });
}

TEST(CxlCollectives, DirectAllreduceSum) {
  runtime::Universe universe(config_for(4));
  universe.run([](runtime::RankCtx& ctx) {
    CxlCollectives cxl(ctx, "ar", 256);
    std::vector<double> values{1.0 * ctx.rank(), 2.0};
    cxl.allreduce_sum(values);
    const int n = ctx.nranks();
    EXPECT_DOUBLE_EQ(values[0], n * (n - 1) / 2.0);
    EXPECT_DOUBLE_EQ(values[1], 2.0 * n);
    cxl.free();
  });
}

TEST(CxlCollectives, MatchesP2pAllgather) {
  runtime::Universe universe(config_for(4));
  universe.run([](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    CxlCollectives cxl(ctx, "cmp", 4096);
    std::vector<double> mine(32);
    for (std::size_t i = 0; i < mine.size(); ++i) {
      mine[i] = ctx.rank() * 100.0 + static_cast<double>(i);
    }
    const std::size_t n = static_cast<std::size_t>(ctx.nranks());
    std::vector<double> via_p2p(32 * n);
    std::vector<double> via_cxl(32 * n);
    allgather(ep, std::as_bytes(std::span(mine)),
              std::as_writable_bytes(std::span(via_p2p)));
    cxl.allgather(std::as_bytes(std::span(mine)),
                  std::as_writable_bytes(std::span(via_cxl)));
    EXPECT_EQ(via_p2p, via_cxl);
    cxl.free();
  });
}

TEST(CxlCollectives, DirectSmallAllgatherIsFasterThanRing) {
  // The latency argument for CXL-direct collectives: one deposit + direct
  // reads beats n-1 queue-protocol rounds for small payloads.
  runtime::Universe universe(config_for(8));
  universe.run([](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    CxlCollectives cxl(ctx, "perf", 64);
    std::vector<std::uint64_t> mine{static_cast<std::uint64_t>(ctx.rank())};
    std::vector<std::uint64_t> all(static_cast<std::size_t>(ctx.nranks()));
    constexpr int kIters = 10;

    // Thread scheduling perturbs bandwidth-reservation arrival order, so
    // a single measurement of either variant can be inflated well past
    // its quiet-schedule cost on a loaded one-core host. Measure a fixed
    // number of back-to-back attempts (no early exit — every rank must
    // run the same collective sequence) and require the modeled direct
    // advantage to show in at least one of them.
    constexpr int kAttempts = 5;
    bool direct_won = false;
    for (int attempt = 0; attempt < kAttempts; ++attempt) {
      ctx.barrier();
      double t0 = ctx.clock().now();
      for (int i = 0; i < kIters; ++i) {
        allgather(ep, std::as_bytes(std::span(mine)),
                  std::as_writable_bytes(std::span(all)));
      }
      ctx.barrier();
      const double ring_cost = ctx.clock().now() - t0;

      t0 = ctx.clock().now();
      for (int i = 0; i < kIters; ++i) {
        cxl.allgather(std::as_bytes(std::span(mine)),
                      std::as_writable_bytes(std::span(all)));
      }
      ctx.barrier();
      const double direct_cost = ctx.clock().now() - t0;
      direct_won = direct_won || direct_cost < ring_cost;
    }
    if (ctx.rank() == 0) {
      EXPECT_TRUE(direct_won);
    }
    cxl.free();
  });
}

}  // namespace
}  // namespace cmpi::coll
