// Hierarchical collectives across pods: correctness of the three-phase
// algorithms against the flat baselines and closed-form results, the
// 1-pod delegation rule (zero cross-pod traffic), and the topology
// telemetry published at cluster creation.
#include "coll/hier_collectives.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "fabric/pod_cluster.hpp"
#include "obs/obs.hpp"

namespace cmpi::coll {
namespace {

fabric::PodClusterConfig cluster_for(int pods, int ranks_per_pod,
                                     int router_local = 0) {
  fabric::PodClusterConfig cfg;
  cfg.topo.pods = pods;
  cfg.topo.ranks_per_pod = ranks_per_pod;
  cfg.topo.router_local = router_local;
  cfg.pod.nodes = 1;
  cfg.pod.ranks_per_node = static_cast<unsigned>(ranks_per_pod);
  return cfg;
}

double expected_sum(int nranks) {
  return static_cast<double>(nranks) * (nranks + 1) / 2.0;
}

TEST(HierColl, AllreduceMatchesFlatAndClosedForm) {
  const auto cfg = cluster_for(2, 4);
  auto cluster = check_ok(fabric::PodCluster::create(cfg));
  const double want = expected_sum(cfg.topo.nranks());
  cluster->run([&](fabric::PodCtx& ctx) {
    HierColl coll(ctx);
    std::vector<double> hier(33, static_cast<double>(ctx.grank() + 1));
    coll.allreduce(std::span<double>(hier), ReduceOp::kSum);
    std::vector<double> flat(33, static_cast<double>(ctx.grank() + 1));
    coll.allreduce_flat(std::span<double>(flat), ReduceOp::kSum);
    for (std::size_t i = 0; i < hier.size(); ++i) {
      EXPECT_DOUBLE_EQ(hier[i], want) << ctx.grank();
      EXPECT_DOUBLE_EQ(flat[i], want) << ctx.grank();
    }
  });
}

TEST(HierColl, AllreduceMinMaxAndInt64) {
  // 4 pods x 3 ranks, router at local rank 1: non-default router
  // placement plus non-power-of-two counts at both tiers.
  const auto cfg = cluster_for(4, 3, /*router_local=*/1);
  auto cluster = check_ok(fabric::PodCluster::create(cfg));
  const int n = cfg.topo.nranks();
  cluster->run([&](fabric::PodCtx& ctx) {
    HierColl coll(ctx);
    std::vector<double> lo(5, static_cast<double>(ctx.grank() + 1));
    coll.allreduce(std::span<double>(lo), ReduceOp::kMin);
    std::vector<double> hi(5, static_cast<double>(ctx.grank() + 1));
    coll.allreduce(std::span<double>(hi), ReduceOp::kMax);
    std::vector<std::int64_t> sum(7, ctx.grank() + 1);
    coll.allreduce(std::span<std::int64_t>(sum), ReduceOp::kSum);
    for (std::size_t i = 0; i < lo.size(); ++i) {
      EXPECT_DOUBLE_EQ(lo[i], 1.0);
      EXPECT_DOUBLE_EQ(hi[i], static_cast<double>(n));
    }
    for (const auto v : sum) {
      EXPECT_EQ(v, static_cast<std::int64_t>(expected_sum(n)));
    }
  });
}

TEST(HierColl, ReduceDeliversToNonRouterRoot) {
  const auto cfg = cluster_for(2, 3);
  auto cluster = check_ok(fabric::PodCluster::create(cfg));
  constexpr int kRoot = 4;  // pod 1, local 1 — not a router
  const double want = expected_sum(cfg.topo.nranks());
  cluster->run([&](fabric::PodCtx& ctx) {
    HierColl coll(ctx);
    std::vector<double> v(9, static_cast<double>(ctx.grank() + 1));
    coll.reduce(kRoot, std::span<double>(v), ReduceOp::kSum);
    if (ctx.grank() == kRoot) {
      for (const auto x : v) {
        EXPECT_DOUBLE_EQ(x, want);
      }
    }
  });
}

TEST(HierColl, BcastFromNonRouterRoot) {
  const auto cfg = cluster_for(3, 3);
  auto cluster = check_ok(fabric::PodCluster::create(cfg));
  constexpr int kRoot = 5;  // pod 1, local 2
  cluster->run([&](fabric::PodCtx& ctx) {
    HierColl coll(ctx);
    std::vector<std::byte> data(257);
    if (ctx.grank() == kRoot) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>((i * 7 + 3) & 0xFF);
      }
    }
    coll.bcast(kRoot, data);
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(data[i], static_cast<std::byte>((i * 7 + 3) & 0xFF))
          << ctx.grank();
    }
  });
}

TEST(HierColl, BarrierReleasesAllRanks) {
  const auto cfg = cluster_for(2, 2);
  auto cluster = check_ok(fabric::PodCluster::create(cfg));
  std::atomic<int> entered{0};
  cluster->run([&](fabric::PodCtx& ctx) {
    HierColl coll(ctx);
    entered.fetch_add(1);
    coll.barrier();
    // Everyone entered before anyone leaves a second barrier round.
    EXPECT_EQ(entered.load(), ctx.nranks());
    coll.barrier();
  });
}

TEST(HierColl, CxlIntraPodPhasesMatch) {
  // Small pods (<= kCxlDirectMaxRanks): phase 1/3 run direct over the
  // pool through CxlCollectives; results must be identical.
  const auto cfg = cluster_for(2, 4);
  auto cluster = check_ok(fabric::PodCluster::create(cfg));
  const double want = expected_sum(cfg.topo.nranks());
  cluster->run([&](fabric::PodCtx& ctx) {
    CxlCollectives cxl(ctx.local(), "hier_test", 4096);
    HierColl coll(ctx, &cxl);
    std::vector<double> v(17, static_cast<double>(ctx.grank() + 1));
    coll.allreduce(std::span<double>(v), ReduceOp::kSum);
    for (const auto x : v) {
      EXPECT_DOUBLE_EQ(x, want);
    }
    cxl.free();
  });
}

class HierCollMetrics : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Config config;
    config.metrics = true;
    obs::configure(config);
    obs::MetricsRegistry::instance().reset_for_test();
  }
  void TearDown() override {
    obs::MetricsRegistry::instance().reset_for_test();
    obs::configure(obs::Config{});
  }

  static std::uint64_t fabric_messages() {
    return obs::MetricsRegistry::instance().snapshot().counter(
        "pods.fabric.messages");
  }
};

TEST_F(HierCollMetrics, SinglePodSendsNoFabricTraffic) {
  // The algorithm-selection rule: pods == 1 delegates to the flat
  // pre-hierarchy collectives and never touches the cross-pod fabric.
  auto cluster = check_ok(fabric::PodCluster::create(cluster_for(1, 4)));
  cluster->run([&](fabric::PodCtx& ctx) {
    HierColl coll(ctx);
    std::vector<double> v(8, 1.0);
    coll.allreduce(std::span<double>(v), ReduceOp::kSum);
    coll.bcast(0, std::as_writable_bytes(std::span<double>(v)));
    coll.barrier();
    for (const auto x : v) {
      EXPECT_DOUBLE_EQ(x, 4.0);
    }
  });
  EXPECT_EQ(fabric_messages(), 0u);
}

TEST_F(HierCollMetrics, MultiPodUsesFabricAndPublishesTopology) {
  auto cluster = check_ok(fabric::PodCluster::create(cluster_for(2, 2)));
  cluster->run([&](fabric::PodCtx& ctx) {
    HierColl coll(ctx);
    std::vector<double> v(8, static_cast<double>(ctx.grank() + 1));
    coll.allreduce(std::span<double>(v), ReduceOp::kSum);
  });
  EXPECT_GT(fabric_messages(), 0u);
  const auto snap = obs::MetricsRegistry::instance().snapshot();
  EXPECT_EQ(snap.gauges.at("topology.pods"), 2u);
  EXPECT_EQ(snap.gauges.at("topology.ranks_per_pod"), 2u);
  EXPECT_EQ(snap.gauges.at("topology.router_local_rank"), 0u);
  EXPECT_EQ(snap.gauges.at("topology.nranks"), 4u);
}

}  // namespace
}  // namespace cmpi::coll
