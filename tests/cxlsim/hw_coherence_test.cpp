#include <gtest/gtest.h>


#include <cstring>
#include "common/units.hpp"
#include "cxlsim/accessor.hpp"

namespace cmpi::cxlsim {
namespace {

CxlTimingParams hw_params() {
  CxlTimingParams p;
  p.hw_coherence = true;
  return p;
}

struct Node {
  std::unique_ptr<CacheSim> cache;
  simtime::VClock clock;
  std::unique_ptr<Accessor> acc;
};

Node make_node(DaxDevice& device) {
  Node n;
  n.cache = std::make_unique<CacheSim>(device);
  n.acc = std::make_unique<Accessor>(device, *n.cache, n.clock);
  return n;
}

TEST(HwCoherence, RegistryTracksAttachedCaches) {
  auto device = check_ok(DaxDevice::create(16_MiB));
  EXPECT_EQ(device->attached_caches(), 0u);
  {
    CacheSim a(*device);
    EXPECT_EQ(device->attached_caches(), 1u);
    {
      CacheSim b(*device);
      EXPECT_EQ(device->attached_caches(), 2u);
    }
    EXPECT_EQ(device->attached_caches(), 1u);
  }
  EXPECT_EQ(device->attached_caches(), 0u);
}

TEST(HwCoherence, PlainStoreVisibleToPlainLoadAcrossNodes) {
  auto device = check_ok(DaxDevice::create(16_MiB, 4, hw_params()));
  Node a = make_node(*device);
  Node b = make_node(*device);
  // B caches the line while it is zero.
  std::byte tmp[8];
  b.acc->load(4096, tmp);
  // A plain-stores (no flush anywhere): BI invalidates B's copy.
  const std::byte data[8] = {std::byte{1}, std::byte{2}, std::byte{3},
                             std::byte{4}, std::byte{5}, std::byte{6},
                             std::byte{7}, std::byte{8}};
  a.acc->store(4096, data);
  // B's plain load misses (its copy was invalidated) and must see A's
  // dirty data (BI read acquisition writes it back first).
  std::byte got[8];
  b.acc->load(4096, got);
  EXPECT_EQ(std::memcmp(got, data, 8), 0);
}

TEST(HwCoherence, WithoutHwCoherenceTheSamePatternIsStale) {
  auto device = check_ok(DaxDevice::create(16_MiB));  // sw coherence
  Node a = make_node(*device);
  Node b = make_node(*device);
  std::byte tmp[8];
  b.acc->load(4096, tmp);
  const std::byte data[8] = {std::byte{9}};
  a.acc->store(4096, data);
  std::byte got[8];
  b.acc->load(4096, got);
  EXPECT_NE(std::to_integer<int>(got[0]), 9);  // stale, as §3.5 warns
}

TEST(HwCoherence, PingPongStaysCoherentManyRounds) {
  auto device = check_ok(DaxDevice::create(16_MiB, 4, hw_params()));
  Node a = make_node(*device);
  Node b = make_node(*device);
  for (std::uint64_t i = 0; i < 50; ++i) {
    a.acc->store(8192, std::as_bytes(std::span(&i, 1)));
    std::uint64_t got = 0;
    b.acc->load(8192, std::as_writable_bytes(std::span(&got, 1)));
    ASSERT_EQ(got, i);
    const std::uint64_t reply = i * 3;
    b.acc->store(8192, std::as_bytes(std::span(&reply, 1)));
    std::uint64_t echoed = 0;
    a.acc->load(8192, std::as_writable_bytes(std::span(&echoed, 1)));
    ASSERT_EQ(echoed, reply);
  }
}

TEST(HwCoherence, SnoopCostGrowsWithAttachedCaches) {
  const auto handoff_cost = [](int extra_caches) {
    auto device = check_ok(DaxDevice::create(16_MiB, 4, hw_params()));
    std::vector<std::unique_ptr<CacheSim>> idle;
    for (int i = 0; i < extra_caches; ++i) {
      idle.push_back(std::make_unique<CacheSim>(*device));
    }
    Node a = make_node(*device);
    const std::byte data[8] = {std::byte{1}};
    a.acc->store(4096, data);
    return a.clock.now();
  };
  const double small_domain = handoff_cost(0);
  const double large_domain = handoff_cost(16);
  EXPECT_GT(large_domain, small_domain + 10 * 250);  // ≥ per-cache snoops
}

TEST(HwCoherence, SoftwareModeChargesNoSnoops) {
  auto device = check_ok(DaxDevice::create(16_MiB));
  std::vector<std::unique_ptr<CacheSim>> idle;
  for (int i = 0; i < 8; ++i) {
    idle.push_back(std::make_unique<CacheSim>(*device));
  }
  Node a = make_node(*device);
  const std::byte data[8] = {std::byte{1}};
  a.acc->store(4096, data);
  // Just the write-buffer cost; no per-cache term.
  EXPECT_LT(a.clock.now(), 100.0);
}

}  // namespace
}  // namespace cmpi::cxlsim
