#include "cxlsim/dax_device.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "common/align.hpp"

namespace cmpi::cxlsim {
namespace {

TEST(DaxDevice, CreateRoundsToDaxAlignment) {
  auto device = check_ok(DaxDevice::create(1));
  EXPECT_EQ(device->size(), kDaxAlignment);
  auto device2 = check_ok(DaxDevice::create(kDaxAlignment + 1));
  EXPECT_EQ(device2->size(), 2 * kDaxAlignment);
}

TEST(DaxDevice, RejectsZeroSize) {
  EXPECT_FALSE(DaxDevice::create(0).is_ok());
}

TEST(DaxDevice, RejectsZeroHeads) {
  EXPECT_FALSE(DaxDevice::create(1024, 0).is_ok());
}

TEST(DaxDevice, PoolIsZeroInitializedAndWritable) {
  auto device = check_ok(DaxDevice::create(4096));
  auto pool = device->pool();
  EXPECT_EQ(std::to_integer<int>(pool[0]), 0);
  EXPECT_EQ(std::to_integer<int>(pool[pool.size() - 1]), 0);
  pool[123] = std::byte{0xAB};
  EXPECT_EQ(std::to_integer<int>(device->pool()[123]), 0xAB);
}

TEST(DaxDevice, ExposesBackingFd) {
  auto device = check_ok(DaxDevice::create(4096));
  EXPECT_GE(device->fd(), 0);
}

TEST(DaxDevice, DefaultCacheabilityIsWriteBack) {
  auto device = check_ok(DaxDevice::create(4096));
  EXPECT_EQ(device->cacheability(0), Cacheability::kWriteBack);
  EXPECT_EQ(device->cacheability(device->size() - 1),
            Cacheability::kWriteBack);
}

TEST(DaxDevice, MtrrRangeMarksUncachable) {
  auto device = check_ok(DaxDevice::create(4096));
  check_ok(device->set_cacheability(4096, 8192, Cacheability::kUncachable));
  EXPECT_EQ(device->cacheability(4095), Cacheability::kWriteBack);
  EXPECT_EQ(device->cacheability(4096), Cacheability::kUncachable);
  EXPECT_EQ(device->cacheability(4096 + 8191), Cacheability::kUncachable);
  EXPECT_EQ(device->cacheability(4096 + 8192), Cacheability::kWriteBack);
}

TEST(DaxDevice, MtrrReprogramSameRangeReplaces) {
  auto device = check_ok(DaxDevice::create(4096));
  check_ok(device->set_cacheability(0, 4096, Cacheability::kUncachable));
  check_ok(device->set_cacheability(0, 4096, Cacheability::kWriteBack));
  EXPECT_EQ(device->cacheability(0), Cacheability::kWriteBack);
}

TEST(DaxDevice, MtrrRegisterFileIsBounded) {
  auto device = check_ok(DaxDevice::create(kDaxAlignment));
  for (std::size_t i = 0; i < MtrrTable::kMaxRanges; ++i) {
    check_ok(device->set_cacheability(i * 4096, 4096,
                                      Cacheability::kUncachable));
  }
  const Status overflow = device->set_cacheability(
      MtrrTable::kMaxRanges * 4096, 4096, Cacheability::kUncachable);
  EXPECT_EQ(overflow.code(), ErrorCode::kCapacityExceeded);
}

TEST(DaxDevice, MtrrRejectsOutOfRange) {
  auto device = check_ok(DaxDevice::create(4096));
  EXPECT_EQ(device
                ->set_cacheability(device->size() - 64, 128,
                                   Cacheability::kUncachable)
                .code(),
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(device->set_cacheability(0, 0, Cacheability::kUncachable).code(),
            ErrorCode::kInvalidArgument);
}

TEST(DaxDevice, HeadsAreReported) {
  auto device = check_ok(DaxDevice::create(4096, 2));
  EXPECT_EQ(device->heads(), 2u);
}

}  // namespace
}  // namespace cmpi::cxlsim
