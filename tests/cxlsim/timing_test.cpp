#include "cxlsim/timing.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace cmpi::cxlsim {
namespace {

TEST(CxlTiming, UncachedCostRegimes) {
  CxlTimingModel model{CxlTimingParams{}};
  const auto& p = model.params();
  // Below the MPS write-combining threshold: cheap per-line cost.
  EXPECT_DOUBLE_EQ(model.uncached_cost(64), p.uc_line_cost_small);
  EXPECT_DOUBLE_EQ(model.uncached_cost(2048), 32 * p.uc_line_cost_small);
  // Above: each line is a serialized TLP exchange.
  EXPECT_DOUBLE_EQ(model.uncached_cost(4096), 64 * p.uc_line_cost_large);
}

TEST(CxlTiming, UncachedSpikesPast4096UsBeyondMps) {
  // §4.5: uncacheable access exceeds 4096 us once the size passes the MPS
  // regime (Fig. 11's spike).
  CxlTimingModel model{CxlTimingParams{}};
  EXPECT_GE(model.uncached_cost(8 * 1024), 4096e3);
  EXPECT_LT(model.uncached_cost(2 * 1024), 100e3);
}

TEST(CxlTiming, UncachedZeroSizeStillCostsOneLine) {
  CxlTimingModel model{CxlTimingParams{}};
  EXPECT_GT(model.uncached_cost(0), 0.0);
}

TEST(CxlTiming, CpuCopyCostLinearBelowThreshold) {
  CxlTimingModel model{CxlTimingParams{}};
  const auto& p = model.params();
  EXPECT_DOUBLE_EQ(model.cpu_copy_cost(1024),
                   1024 / p.cpu_copy_bytes_per_ns);
  EXPECT_DOUBLE_EQ(model.cpu_copy_cost(0), 0.0);
}

TEST(CxlTiming, CpuCopySoloStreamNeverDegrades) {
  CxlTimingModel model{CxlTimingParams{}};
  CxlTimingModel::StreamScope self(model);
  const auto& p = model.params();
  EXPECT_DOUBLE_EQ(model.cpu_copy_cost(8_MiB), 8_MiB / p.cpu_copy_bytes_per_ns);
}

TEST(CxlTiming, CpuCopyDegradesWithConcurrentStreamsForLargeMessages) {
  CxlTimingModel model{CxlTimingParams{}};
  CxlTimingModel::StreamScope s1(model);
  CxlTimingModel::StreamScope s2(model);
  CxlTimingModel::StreamScope s3(model);
  CxlTimingModel::StreamScope s4(model);
  const auto& p = model.params();
  // Small messages: contention-free even with 4 streams.
  EXPECT_DOUBLE_EQ(model.cpu_copy_cost(16_KiB),
                   16_KiB / p.cpu_copy_bytes_per_ns);
  // Large messages: slower than the solo rate.
  EXPECT_GT(model.cpu_copy_cost(8_MiB),
            1.5 * (8_MiB / p.cpu_copy_bytes_per_ns));
}

TEST(CxlTiming, StreamScopeGaugeNests) {
  CxlTimingModel model{CxlTimingParams{}};
  EXPECT_EQ(model.active_streams(), 0);
  {
    CxlTimingModel::StreamScope a(model);
    EXPECT_EQ(model.active_streams(), 1);
    {
      CxlTimingModel::StreamScope b(model);
      EXPECT_EQ(model.active_streams(), 2);
    }
    EXPECT_EQ(model.active_streams(), 1);
  }
  EXPECT_EQ(model.active_streams(), 0);
}

TEST(CxlTiming, DeviceReadsCheaperThanWrites) {
  CxlTimingModel model{CxlTimingParams{}};
  const simtime::Ns write_done =
      model.reserve_device(0, 1_MiB, /*is_read=*/false);
  model.reset();
  const simtime::Ns read_done =
      model.reserve_device(0, 1_MiB, /*is_read=*/true);
  EXPECT_LT(read_done, write_done);
  EXPECT_NEAR(read_done / write_done, model.params().read_cost_factor, 0.01);
}

TEST(CxlTiming, DeviceBandwidthIsShared) {
  CxlTimingModel model{CxlTimingParams{}};
  const simtime::Ns first = model.reserve_device(0, 1_MiB, false);
  const simtime::Ns second = model.reserve_device(0, 1_MiB, false);
  EXPECT_NEAR(second, 2 * first, 1.0);
}

}  // namespace
}  // namespace cmpi::cxlsim
