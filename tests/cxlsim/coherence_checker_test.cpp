// CoherenceChecker: the §3.5 software-coherence discipline as a
// machine-checked property. Each negative test injects one specific
// protocol bug (missing flush, racing stores, publish over dirty payload,
// publish before fence) and asserts the checker reports that violation —
// with the right kind, rank, and pool address. The positive tests run the
// real protocol and assert silence.
#include "cxlsim/coherence_checker.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/units.hpp"
#include "cxlsim/accessor.hpp"
#include "cxlsim/dax_device.hpp"

namespace cmpi::cxlsim {
namespace {

constexpr int kProducerRank = 1;
constexpr int kConsumerRank = 0;
constexpr std::uint64_t kData = 4096;   // payload line under test
constexpr std::uint64_t kFlag = 8192;   // 16-byte timestamped flag

class CoherenceCheckerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = check_ok(DaxDevice::create(8_MiB));
    device_->enable_coherence_checker();
    producer_cache_ = std::make_unique<CacheSim>(*device_);
    consumer_cache_ = std::make_unique<CacheSim>(*device_);
    producer_ = std::make_unique<Accessor>(*device_, *producer_cache_,
                                           producer_clock_);
    consumer_ = std::make_unique<Accessor>(*device_, *consumer_cache_,
                                           consumer_clock_);
  }

  void TearDown() override {
    // Tests run on one thread; leave it untagged for the next test.
    CoherenceChecker::set_current_rank(-1);
  }

  CoherenceChecker& checker() { return *device_->checker(); }

  /// Both accessors live on the test thread, so rank attribution is set
  /// before acting as each side.
  static void as_producer() {
    CoherenceChecker::set_current_rank(kProducerRank);
  }
  static void as_consumer() {
    CoherenceChecker::set_current_rank(kConsumerRank);
  }

  /// First stored violation of `kind`, failing the test if absent.
  CoherenceChecker::Violation first_of(CoherenceChecker::Kind kind) {
    for (const auto& v : checker().violations()) {
      if (v.kind == kind) {
        return v;
      }
    }
    ADD_FAILURE() << "no violation of kind "
                  << CoherenceChecker::kind_name(kind);
    return {};
  }

  simtime::VClock producer_clock_;
  simtime::VClock consumer_clock_;
  std::unique_ptr<DaxDevice> device_;
  std::unique_ptr<CacheSim> producer_cache_;
  std::unique_ptr<CacheSim> consumer_cache_;
  std::unique_ptr<Accessor> producer_;
  std::unique_ptr<Accessor> consumer_;
};

TEST_F(CoherenceCheckerTest, CorrectPublishSubscribeIsSilent) {
  // The full discipline: coherent (flushed) writes, fenced publish,
  // pool-coherent reads. Nothing to report.
  const std::vector<std::byte> payload(256, std::byte{0x5A});
  as_producer();
  producer_->store(kData, payload);
  producer_->clflushopt(kData, payload.size());
  producer_->annotate_publish_range(kData, payload.size());
  producer_->publish_flag(kFlag, 1);

  as_consumer();
  const auto flag = consumer_->peek_flag(kFlag);
  EXPECT_EQ(flag.value, 1u);
  consumer_->absorb_flag(flag);
  std::vector<std::byte> got(payload.size());
  consumer_->bulk_read(kData, got);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(checker().summary().total(), 0u);
}

TEST_F(CoherenceCheckerTest, NtOnlyTrafficIsSilent) {
  as_producer();
  const std::vector<std::byte> payload(512, std::byte{0x11});
  producer_->bulk_write(kData, payload);
  producer_->annotate_publish_range(kData, payload.size());
  producer_->publish_flag(kFlag, 1);
  as_consumer();
  std::vector<std::byte> got(payload.size());
  consumer_->bulk_read(kData, got);
  EXPECT_EQ(got, payload);
  EXPECT_EQ(checker().summary().total(), 0u);
}

TEST_F(CoherenceCheckerTest, MissingFlushBeforeConsumerReadIsStaleRead) {
  // Producer leaves the payload dirty in its cache; the consumer's
  // pool-coherent read can only observe the (older) pool bytes.
  as_producer();
  const std::vector<std::byte> payload(64, std::byte{0xAB});
  producer_->store(kData, payload);  // cached, never flushed

  as_consumer();
  std::vector<std::byte> got(64);
  consumer_->bulk_read(kData, got);

  EXPECT_GE(checker().summary().count(CoherenceChecker::Kind::kStaleRead),
            1u);
  const auto v = first_of(CoherenceChecker::Kind::kStaleRead);
  EXPECT_EQ(v.rank, kConsumerRank);  // the read observed stale data
  EXPECT_EQ(v.offset, kData);
}

TEST_F(CoherenceCheckerTest, CachedHitOvertakenByPoolIsStaleRead) {
  // Consumer caches a line, producer NT-overwrites it in the pool, the
  // consumer's next cached load hits the stale copy.
  as_producer();
  const std::vector<std::byte> first(64, std::byte{0x01});
  producer_->nt_store(kData, first);
  as_consumer();
  std::vector<std::byte> got(64);
  consumer_->load(kData, got);  // fills the consumer cache
  EXPECT_EQ(checker().summary().total(), 0u);

  as_producer();
  const std::vector<std::byte> second(64, std::byte{0x02});
  producer_->nt_store(kData, second);
  as_consumer();
  consumer_->load(kData, got);  // stale hit

  EXPECT_GE(checker().summary().count(CoherenceChecker::Kind::kStaleRead),
            1u);
  const auto v = first_of(CoherenceChecker::Kind::kStaleRead);
  EXPECT_EQ(v.rank, kConsumerRank);
  EXPECT_EQ(v.offset, kData);
}

TEST_F(CoherenceCheckerTest, ConcurrentDirtyStoresAreLostUpdate) {
  as_producer();
  const std::vector<std::byte> mine(64, std::byte{0x01});
  producer_->store(kData, mine);  // dirty in producer's cache
  as_consumer();
  const std::vector<std::byte> theirs(64, std::byte{0x02});
  consumer_->store(kData, theirs);  // racing store: one write must lose

  EXPECT_GE(checker().summary().count(CoherenceChecker::Kind::kLostUpdate),
            1u);
  const auto v = first_of(CoherenceChecker::Kind::kLostUpdate);
  EXPECT_EQ(v.rank, kConsumerRank);  // the second writer races the first
  EXPECT_EQ(v.offset, kData);
}

TEST_F(CoherenceCheckerTest, NtStoreOverForeignDirtyLineIsLostUpdate) {
  as_consumer();
  const std::vector<std::byte> theirs(64, std::byte{0x02});
  consumer_->store(kData, theirs);  // dirty in the consumer's cache
  as_producer();
  const std::vector<std::byte> mine(128, std::byte{0x01});
  producer_->nt_store(kData, mine);  // lands in the pool underneath it

  EXPECT_GE(checker().summary().count(CoherenceChecker::Kind::kLostUpdate),
            1u);
  const auto v = first_of(CoherenceChecker::Kind::kLostUpdate);
  EXPECT_EQ(v.rank, kProducerRank);
  EXPECT_EQ(v.offset, kData);
}

TEST_F(CoherenceCheckerTest, PublishOverDirtyPayloadIsTornPublish) {
  // The flag goes up while its covered payload is still dirty in the
  // publisher's cache: a reader that trusts the flag reads garbage.
  as_producer();
  const std::vector<std::byte> payload(64, std::byte{0xCD});
  producer_->store(kData, payload);  // dirty — flush forgotten
  producer_->annotate_publish_range(kData, payload.size());
  producer_->publish_flag(kFlag, 1);

  EXPECT_GE(checker().summary().count(CoherenceChecker::Kind::kTornPublish),
            1u);
  const auto v = first_of(CoherenceChecker::Kind::kTornPublish);
  EXPECT_EQ(v.rank, kProducerRank);
  EXPECT_EQ(v.offset, kData);
}

TEST_F(CoherenceCheckerTest, FlushedPayloadPublishIsNotTorn) {
  as_producer();
  const std::vector<std::byte> payload(64, std::byte{0xCD});
  producer_->store(kData, payload);
  producer_->clflushopt(kData, payload.size());
  producer_->annotate_publish_range(kData, payload.size());
  producer_->publish_flag(kFlag, 1);
  EXPECT_EQ(checker().summary().count(CoherenceChecker::Kind::kTornPublish),
            0u);
}

TEST_F(CoherenceCheckerTest, RawFlagStoreWithUnfencedWritesIsFenceOrder) {
  // publish_flag registers the flag word; a later raw nt_store_u64 to it
  // while NT writes are still undrained is a publish-before-sfence bug.
  as_producer();
  producer_->publish_flag(kFlag, 1);  // registers kFlag as a flag word
  const std::vector<std::byte> payload(256, std::byte{0x33});
  producer_->bulk_write(kData, payload);  // NT writes now outstanding
  producer_->nt_store_u64(kFlag, 2);      // no sfence in between!

  EXPECT_GE(checker().summary().count(CoherenceChecker::Kind::kFenceOrder),
            1u);
  const auto v = first_of(CoherenceChecker::Kind::kFenceOrder);
  EXPECT_EQ(v.rank, kProducerRank);
  EXPECT_EQ(v.offset, kFlag);
}

TEST_F(CoherenceCheckerTest, FencedFlagStoreIsSilent) {
  as_producer();
  producer_->publish_flag(kFlag, 1);
  const std::vector<std::byte> payload(256, std::byte{0x33});
  producer_->bulk_write(kData, payload);
  producer_->sfence();
  producer_->nt_store_u64(kFlag, 2);  // correctly ordered
  EXPECT_EQ(checker().summary().count(CoherenceChecker::Kind::kFenceOrder),
            0u);
}

TEST_F(CoherenceCheckerTest, ToleranceScopeSuppressesStaleReadOnly) {
  as_producer();
  const std::vector<std::byte> payload(64, std::byte{0xAB});
  producer_->store(kData, payload);  // dirty
  as_consumer();
  std::vector<std::byte> got(64);
  {
    CoherenceChecker::ToleranceScope tolerate;
    consumer_->bulk_read(kData, got);  // optimistic probe: suppressed
  }
  EXPECT_EQ(checker().summary().count(CoherenceChecker::Kind::kStaleRead),
            0u);
  consumer_->bulk_read(kData, got);  // outside the scope: reported
  EXPECT_GE(checker().summary().count(CoherenceChecker::Kind::kStaleRead),
            1u);
}

TEST_F(CoherenceCheckerTest, SummaryStringAndClear) {
  as_producer();
  const std::vector<std::byte> payload(64, std::byte{0x01});
  producer_->store(kData, payload);
  as_consumer();
  std::vector<std::byte> got(64);
  consumer_->bulk_read(kData, got);
  ASSERT_GE(checker().total_violations(), 1u);
  EXPECT_NE(checker().summary_string().find("stale-read"),
            std::string::npos);
  checker().clear();
  EXPECT_EQ(checker().total_violations(), 0u);
  EXPECT_TRUE(checker().violations().empty());
}

TEST_F(CoherenceCheckerTest, DisabledCheckerCostsNothingAndReportsNothing) {
  device_->disable_coherence_checker();
  EXPECT_EQ(device_->checker(), nullptr);
  as_producer();
  const std::vector<std::byte> payload(64, std::byte{0xAB});
  producer_->store(kData, payload);  // would be a violation if enabled
  as_consumer();
  std::vector<std::byte> got(64);
  consumer_->bulk_read(kData, got);  // no checker, no report, no crash
}

}  // namespace
}  // namespace cmpi::cxlsim
