#include "cxlsim/accessor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/units.hpp"

namespace cmpi::cxlsim {
namespace {

class AccessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = check_ok(DaxDevice::create(4 * kDaxAlignment));
    cache_a_ = std::make_unique<CacheSim>(*device_);
    cache_b_ = std::make_unique<CacheSim>(*device_);
    acc_a_ = std::make_unique<Accessor>(*device_, *cache_a_, clock_a_);
    acc_b_ = std::make_unique<Accessor>(*device_, *cache_b_, clock_b_);
  }

  static std::vector<std::byte> pattern(std::size_t n, int seed = 1) {
    std::vector<std::byte> out(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = static_cast<std::byte>((seed * 31 + i) & 0xFF);
    }
    return out;
  }

  simtime::VClock clock_a_;
  simtime::VClock clock_b_;
  std::unique_ptr<DaxDevice> device_;
  std::unique_ptr<CacheSim> cache_a_;
  std::unique_ptr<CacheSim> cache_b_;
  std::unique_ptr<Accessor> acc_a_;
  std::unique_ptr<Accessor> acc_b_;
};

TEST_F(AccessorTest, ColdLoadCharges790nsPerLine) {
  // Table 1: CXL memory sharing (with caching, no flushing) = 790 ns.
  std::byte out[8];
  acc_a_->load(0, out);
  EXPECT_DOUBLE_EQ(clock_a_.now(), device_->timing().params().line_fill_latency);
}

TEST_F(AccessorTest, CachedLoadIsCheap) {
  std::byte out[8];
  acc_a_->load(0, out);
  const simtime::Ns after_miss = clock_a_.now();
  acc_a_->load(0, out);
  EXPECT_LT(clock_a_.now() - after_miss, 20.0);
}

TEST_F(AccessorTest, CoherentWriteOf8BytesCostsAbout2200ns) {
  // Table 1: CXL memory sharing with cache flushing = 2.2 us for the small
  // access; the composite store+clflushopt+sfence must land near it.
  const auto data = pattern(8);
  acc_a_->coherent_write(64, data);
  EXPECT_GT(clock_a_.now(), 1600.0);
  EXPECT_LT(clock_a_.now(), 2800.0);
}

TEST_F(AccessorTest, CoherentWriteThenCoherentReadRoundTrips) {
  const auto data = pattern(200, 7);
  acc_a_->coherent_write(4096, data);
  std::vector<std::byte> got(200);
  acc_b_->coherent_read(4096, got);
  EXPECT_EQ(got, data);
}

TEST_F(AccessorTest, PlainStoreIsInvisibleToOtherNode) {
  const auto data = pattern(8, 3);
  acc_a_->store(8192, data);  // no flush
  std::vector<std::byte> got(8);
  acc_b_->coherent_read(8192, got);
  EXPECT_NE(got, data);  // still zeros
}

TEST_F(AccessorTest, SfenceAbsorbsWritebackCompletion) {
  const auto data = pattern(64);
  acc_a_->store(128, data);
  acc_a_->clflushopt(128, 64);
  const simtime::Ns before_fence = clock_a_.now();
  acc_a_->sfence();
  // The fence waits for the device write-back (line_write_latency floor).
  EXPECT_GT(clock_a_.now(),
            before_fence + device_->timing().params().fence_cost);
}

TEST_F(AccessorTest, ClflushoptCheaperThanClflushManyLines) {
  // Fig. 11: clflushopt outperforms clflush up to 4x beyond one line.
  const auto data = pattern(16_KiB);
  acc_a_->store(0, data);
  const simtime::Ns t0 = clock_a_.now();
  acc_a_->clflush(0, 16_KiB);
  const simtime::Ns serial = clock_a_.now() - t0;

  acc_b_->store(64_KiB, data);
  const simtime::Ns t1 = clock_b_.now();
  acc_b_->clflushopt(64_KiB, 16_KiB);
  const simtime::Ns parallel = clock_b_.now() - t1;
  EXPECT_NEAR(serial / parallel, 4.0, 1.0);
}

TEST_F(AccessorTest, FlushOfCleanRangeStillCostsIssueTime) {
  const simtime::Ns t0 = clock_a_.now();
  acc_a_->clflush(0, 64);
  EXPECT_GT(clock_a_.now(), t0);
}

TEST_F(AccessorTest, NtStoreVisibleToNtLoadImmediately) {
  const auto data = pattern(100, 5);
  acc_a_->nt_store(16384, data);
  std::vector<std::byte> got(100);
  acc_b_->nt_load(16384, got);
  EXPECT_EQ(got, data);
}

TEST_F(AccessorTest, NtU64RoundTripChargesDeviceLatency) {
  acc_a_->nt_store_u64(32768, 77);
  EXPECT_DOUBLE_EQ(clock_a_.now(), device_->timing().params().nt_store_latency);
  EXPECT_EQ(acc_b_->nt_load_u64(32768), 77u);
  EXPECT_DOUBLE_EQ(clock_b_.now(), device_->timing().params().nt_load_latency);
}

TEST_F(AccessorTest, BulkWriteReadRoundTrip) {
  const auto data = pattern(1_MiB, 9);
  acc_a_->bulk_write(1_MiB, data);
  acc_a_->sfence();
  std::vector<std::byte> got(1_MiB);
  acc_b_->bulk_read(1_MiB, got);
  EXPECT_EQ(got, data);
}

TEST_F(AccessorTest, BulkWriteChargesCpuAndDeviceTime) {
  const auto data = pattern(1_MiB);
  acc_a_->bulk_write(1_MiB, data);
  const auto& p = device_->timing().params();
  // At least the CPU copy cost.
  EXPECT_GE(clock_a_.now(), 1_MiB / p.cpu_copy_bytes_per_ns - 1);
  acc_a_->sfence();
  // The fence also covers the device streaming time.
  EXPECT_GE(clock_a_.now(), 1_MiB / p.device_bytes_per_ns);
}

TEST_F(AccessorTest, ConcurrentBulkWritesContendOnDevice) {
  // Use a device whose CPU copy path is far faster than the device link so
  // the shared-device queueing is what dominates completion times.
  CxlTimingParams params;
  params.cpu_copy_bytes_per_ns = 1e6;
  auto device = check_ok(DaxDevice::create(2 * kDaxAlignment, 4, params));
  CacheSim cache_a(*device);
  CacheSim cache_b(*device);
  simtime::VClock clock_a;
  simtime::VClock clock_b;
  Accessor a(*device, cache_a, clock_a);
  Accessor b(*device, cache_b, clock_b);

  const auto data = pattern(1_MiB);
  a.bulk_write(0, data);
  a.sfence();
  const simtime::Ns solo = clock_a.now();
  // Second stream starting at virtual time 0 queues behind the first on
  // the device: roughly twice the streaming time.
  b.bulk_write(1_MiB, data);
  b.sfence();
  EXPECT_GT(clock_b.now(), 1.8 * solo);
}

TEST_F(AccessorTest, UncachableRegionBypassesCache) {
  check_ok(device_->set_cacheability(64_KiB, 4096,
                                     Cacheability::kUncachable));
  const auto data = pattern(16, 2);
  acc_a_->store(64_KiB, data);
  // Visible in the pool immediately — no flush needed.
  std::vector<std::byte> got(16);
  acc_b_->nt_load(64_KiB, got);
  EXPECT_EQ(got, data);
}

TEST_F(AccessorTest, UncachableAccessIsDrasticallySlower) {
  check_ok(device_->set_cacheability(64_KiB, 64_KiB,
                                     Cacheability::kUncachable));
  acc_a_->memset(64_KiB, std::byte{1}, 8_KiB);
  // §4.5: latency reaches 4096 us beyond the MPS regime.
  EXPECT_GE(clock_a_.now(), 4096e3);
}

TEST_F(AccessorTest, MemsetOnWriteBackRegionIsCheapUntilFlush) {
  acc_a_->memset(0, std::byte{1}, 8_KiB);
  EXPECT_LT(clock_a_.now(), 10e3);
}

TEST_F(AccessorTest, FlagPublishCarriesTimestamp) {
  clock_a_.advance(5000);
  acc_a_->publish_flag(128_KiB, 42);
  const auto flag = acc_b_->peek_flag(128_KiB);
  EXPECT_EQ(flag.value, 42u);
  EXPECT_GE(flag.stamp, 5000.0);
  acc_b_->absorb_flag(flag);
  EXPECT_GE(clock_b_.now(), flag.stamp);
}

TEST_F(AccessorTest, FlagStampCoversPriorWrites) {
  // Release semantics: the stamp published with the flag must be >= the
  // completion of the bulk write before it.
  const auto data = pattern(1_MiB);
  acc_a_->bulk_write(0, data);
  acc_a_->publish_flag(128_KiB, 1);
  const auto flag = acc_b_->peek_flag(128_KiB);
  EXPECT_GE(flag.stamp, 1_MiB / device_->timing().params().device_bytes_per_ns);
}

TEST_F(AccessorTest, PeekFlagDoesNotAdvanceClock) {
  acc_a_->publish_flag(128_KiB, 7);
  const simtime::Ns before = clock_b_.now();
  (void)acc_b_->peek_flag(128_KiB);
  EXPECT_DOUBLE_EQ(clock_b_.now(), before);
}

}  // namespace
}  // namespace cmpi::cxlsim
