#include "cxlsim/cache_sim.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/rng.hpp"

namespace cmpi::cxlsim {
namespace {

class CacheSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    device_ = check_ok(DaxDevice::create(4 * kDaxAlignment));
    node_a_ = std::make_unique<CacheSim>(*device_);
    node_b_ = std::make_unique<CacheSim>(*device_);
  }

  std::vector<std::byte> bytes(std::initializer_list<int> values) {
    std::vector<std::byte> out;
    for (const int v : values) {
      out.push_back(static_cast<std::byte>(v));
    }
    return out;
  }

  std::byte pool_at(std::uint64_t offset) { return device_->pool()[offset]; }

  std::unique_ptr<DaxDevice> device_;
  std::unique_ptr<CacheSim> node_a_;
  std::unique_ptr<CacheSim> node_b_;
};

TEST_F(CacheSimTest, WriteStaysInCacheUntilFlushed) {
  const auto data = bytes({1, 2, 3, 4});
  node_a_->write(128, data);
  // The pool has NOT been updated: this is the coherence hazard.
  EXPECT_EQ(std::to_integer<int>(pool_at(128)), 0);
  node_a_->clflush(128, data.size());
  EXPECT_EQ(std::to_integer<int>(pool_at(128)), 1);
  EXPECT_EQ(std::to_integer<int>(pool_at(131)), 4);
}

TEST_F(CacheSimTest, RemoteNodeSeesStaleDataWithoutInvalidate) {
  // Node B caches the line while it is zero.
  std::byte before[4];
  node_b_->read(256, before);
  EXPECT_EQ(std::to_integer<int>(before[0]), 0);

  // Node A writes and flushes.
  const auto data = bytes({42, 43, 44, 45});
  node_a_->write(256, data);
  node_a_->clflush(256, data.size());
  EXPECT_EQ(std::to_integer<int>(pool_at(256)), 42);

  // B still reads its stale cached copy.
  std::byte stale[4];
  node_b_->read(256, stale);
  EXPECT_EQ(std::to_integer<int>(stale[0]), 0);

  // After invalidating, B sees A's update.
  node_b_->clflush(256, 4);
  std::byte fresh[4];
  node_b_->read(256, fresh);
  EXPECT_EQ(std::to_integer<int>(fresh[0]), 42);
  EXPECT_EQ(std::to_integer<int>(fresh[3]), 45);
}

TEST_F(CacheSimTest, PartialLineWriteMergesWithPoolContents) {
  // Pre-existing pool data written by B.
  const auto base = bytes({9, 9, 9, 9, 9, 9, 9, 9});
  node_b_->nt_store(512, base);
  // A writes only bytes 2..3 (write-allocate must fill first).
  const auto patch = bytes({7, 7});
  node_a_->write(514, patch);
  node_a_->clflush(514, 2);
  EXPECT_EQ(std::to_integer<int>(pool_at(512)), 9);
  EXPECT_EQ(std::to_integer<int>(pool_at(514)), 7);
  EXPECT_EQ(std::to_integer<int>(pool_at(515)), 7);
  EXPECT_EQ(std::to_integer<int>(pool_at(516)), 9);
}

TEST_F(CacheSimTest, ClwbWritesBackButKeepsLineValid) {
  const auto data = bytes({5});
  node_a_->write(1024, data);
  const auto result = node_a_->clwb(1024, 1);
  EXPECT_EQ(result.lines_written_back, 1u);
  EXPECT_EQ(std::to_integer<int>(pool_at(1024)), 5);
  // Subsequent read must be a hit (line still valid).
  const auto before = node_a_->stats();
  std::byte out[1];
  node_a_->read(1024, out);
  const auto after = node_a_->stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.misses, before.misses);
}

TEST_F(CacheSimTest, ClflushInvalidates) {
  const auto data = bytes({5});
  node_a_->write(1024, data);
  node_a_->clflush(1024, 1);
  const auto before = node_a_->stats();
  std::byte out[1];
  node_a_->read(1024, out);
  const auto after = node_a_->stats();
  EXPECT_EQ(after.misses, before.misses + 1);
}

TEST_F(CacheSimTest, FlushResultCountsSpannedLines) {
  node_a_->write(0, std::vector<std::byte>(200, std::byte{1}));
  const auto result = node_a_->clflush(0, 200);
  EXPECT_EQ(result.lines_touched, 4u);  // 200 bytes from offset 0: 4 lines
  EXPECT_EQ(result.lines_written_back, 4u);
}

TEST_F(CacheSimTest, FlushOfUncachedRangeWritesNothingBack) {
  const auto result = node_a_->clflush(8192, 256);
  EXPECT_EQ(result.lines_touched, 4u);
  EXPECT_EQ(result.lines_written_back, 0u);
}

TEST_F(CacheSimTest, ZeroSizeFlushIsNoop) {
  const auto result = node_a_->clflush(0, 0);
  EXPECT_EQ(result.lines_touched, 0u);
}

TEST_F(CacheSimTest, CapacityEvictionWritesBackDirtyLines) {
  CacheSim tiny(*device_, CacheSim::Geometry{.sets = 2, .ways = 2});
  // Dirty far more lines than the cache holds.
  for (std::uint64_t i = 0; i < 64; ++i) {
    tiny.write(i * kCacheLineSize, bytes({static_cast<int>(i + 1)}));
  }
  const auto stats = tiny.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.writebacks, 0u);
  // Evicted lines reached the pool; at most sets*ways remain cached.
  int in_pool = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    if (std::to_integer<int>(pool_at(i * kCacheLineSize)) ==
        static_cast<int>(i + 1)) {
      ++in_pool;
    }
  }
  EXPECT_GE(in_pool, 60);  // all but the (<=4) still-cached lines
}

TEST_F(CacheSimTest, NtStoreImmediatelyVisibleInPool) {
  node_a_->nt_store(2048, bytes({11, 12}));
  EXPECT_EQ(std::to_integer<int>(pool_at(2048)), 11);
  EXPECT_EQ(std::to_integer<int>(pool_at(2049)), 12);
}

TEST_F(CacheSimTest, NtStoreEvictsStaleCachedCopy) {
  // A caches the line.
  std::byte tmp[1];
  node_a_->read(4096, tmp);
  // A NT-stores new data; its own later cached read must see it.
  node_a_->nt_store(4096, bytes({77}));
  std::byte out[1];
  node_a_->read(4096, out);
  EXPECT_EQ(std::to_integer<int>(out[0]), 77);
}

TEST_F(CacheSimTest, NtLoadBypassesCacheAndSeesPool) {
  // B caches stale zero.
  std::byte tmp[1];
  node_b_->read(4160, tmp);
  node_a_->nt_store(4160, bytes({99}));
  // Cached read on B is stale, NT load is fresh.
  std::byte cached[1];
  node_b_->read(4160, cached);
  EXPECT_EQ(std::to_integer<int>(cached[0]), 0);
  std::byte fresh[1];
  node_b_->nt_load(4160, fresh);
  EXPECT_EQ(std::to_integer<int>(fresh[0]), 99);
}

TEST_F(CacheSimTest, NtLoadReturnsOwnDirtyData) {
  node_a_->write(4224, bytes({55}));
  std::byte out[1];
  node_a_->nt_load(4224, out);
  // The node's coherent domain satisfies the load with the dirty line.
  EXPECT_EQ(std::to_integer<int>(out[0]), 55);
}

TEST_F(CacheSimTest, NtU64RoundTrip) {
  node_a_->nt_store_u64(4352, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(node_b_->nt_load_u64(4352), 0xDEADBEEFCAFEF00DULL);
}

TEST_F(CacheSimTest, MemsetThroughCache) {
  node_a_->memset(8192, std::byte{0xEE}, 300);
  EXPECT_EQ(std::to_integer<int>(pool_at(8192)), 0);  // not yet flushed
  node_a_->clflush(8192, 300);
  for (std::uint64_t i = 0; i < 300; ++i) {
    EXPECT_EQ(std::to_integer<int>(pool_at(8192 + i)), 0xEE);
  }
  EXPECT_EQ(std::to_integer<int>(pool_at(8192 + 300)), 0);
}

TEST_F(CacheSimTest, FalseSharingAcrossNodesLosesData) {
  // Nodes A and B write different halves of the SAME cache line, then both
  // flush. Whole-line write-back means the later flush clobbers the
  // earlier one — the hazard that motivates the paper's cacheline-aligned
  // object layout (§3.7).
  node_a_->write(8448, bytes({1, 1}));       // bytes 0-1 of the line
  node_b_->write(8448 + 32, bytes({2, 2}));  // bytes 32-33 of the line
  node_a_->clflush(8448, 2);
  node_b_->clflush(8448 + 32, 2);
  // B's write-back contained a stale zero prefix: A's data is gone.
  EXPECT_EQ(std::to_integer<int>(pool_at(8448)), 0);
  EXPECT_EQ(std::to_integer<int>(pool_at(8448 + 32)), 2);
}

TEST_F(CacheSimTest, WritebackAllFlushesEverything) {
  for (int i = 0; i < 10; ++i) {
    node_a_->write(16384 + i * 64, bytes({i + 1}));
  }
  node_a_->writeback_all();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(std::to_integer<int>(pool_at(16384 + i * 64)), i + 1);
  }
}

TEST_F(CacheSimTest, DropAllDiscardsDirtyData) {
  node_a_->write(32768, bytes({9}));
  node_a_->drop_all();
  std::byte out[1];
  node_a_->read(32768, out);
  EXPECT_EQ(std::to_integer<int>(out[0]), 0);  // dirty data was lost
}

TEST_F(CacheSimTest, RandomizedAgainstReferenceWithFlushDiscipline) {
  // Property: if every write is followed by clflush and every read is
  // preceded by clflush (the §3.5 discipline), a single node's view always
  // matches a flat reference buffer.
  constexpr std::uint64_t kBase = 65536;
  constexpr std::size_t kSpan = 2048;
  std::vector<std::byte> reference(kSpan, std::byte{0});
  Rng rng(1234);
  for (int step = 0; step < 500; ++step) {
    const std::size_t offset = rng.next_below(kSpan - 1);
    const std::size_t size = 1 + rng.next_below(
        std::min<std::uint64_t>(kSpan - offset, 200) - 1 + 1);
    if (rng.next_bool(0.5)) {
      std::vector<std::byte> data(size);
      for (auto& b : data) {
        b = static_cast<std::byte>(rng.next_below(256));
      }
      node_a_->write(kBase + offset, data);
      node_a_->clflush(kBase + offset, size);
      std::memcpy(reference.data() + offset, data.data(), size);
    } else {
      node_b_->clflush(kBase + offset, size);
      std::vector<std::byte> got(size);
      node_b_->read(kBase + offset, got);
      ASSERT_EQ(std::memcmp(got.data(), reference.data() + offset, size), 0)
          << "step " << step;
    }
  }
}

}  // namespace
}  // namespace cmpi::cxlsim
