file(REMOVE_RECURSE
  "../bench/fig8_twosided_lat"
  "../bench/fig8_twosided_lat.pdb"
  "CMakeFiles/fig8_twosided_lat.dir/fig8_twosided_lat.cpp.o"
  "CMakeFiles/fig8_twosided_lat.dir/fig8_twosided_lat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_twosided_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
