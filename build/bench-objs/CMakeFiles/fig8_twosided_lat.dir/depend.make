# Empty dependencies file for fig8_twosided_lat.
# This may be replaced when dependencies are built.
