file(REMOVE_RECURSE
  "../bench/fig9_cellsize"
  "../bench/fig9_cellsize.pdb"
  "CMakeFiles/fig9_cellsize.dir/fig9_cellsize.cpp.o"
  "CMakeFiles/fig9_cellsize.dir/fig9_cellsize.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_cellsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
