# Empty dependencies file for fig9_cellsize.
# This may be replaced when dependencies are built.
