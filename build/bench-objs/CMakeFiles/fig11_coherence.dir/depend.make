# Empty dependencies file for fig11_coherence.
# This may be replaced when dependencies are built.
