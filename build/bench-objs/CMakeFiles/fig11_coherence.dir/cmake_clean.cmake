file(REMOVE_RECURSE
  "../bench/fig11_coherence"
  "../bench/fig11_coherence.pdb"
  "CMakeFiles/fig11_coherence.dir/fig11_coherence.cpp.o"
  "CMakeFiles/fig11_coherence.dir/fig11_coherence.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
