# Empty compiler generated dependencies file for fig5_onesided_bw.
# This may be replaced when dependencies are built.
