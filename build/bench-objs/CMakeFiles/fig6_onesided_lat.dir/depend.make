# Empty dependencies file for fig6_onesided_lat.
# This may be replaced when dependencies are built.
