file(REMOVE_RECURSE
  "../bench/fig6_onesided_lat"
  "../bench/fig6_onesided_lat.pdb"
  "CMakeFiles/fig6_onesided_lat.dir/fig6_onesided_lat.cpp.o"
  "CMakeFiles/fig6_onesided_lat.dir/fig6_onesided_lat.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_onesided_lat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
