# Empty compiler generated dependencies file for gbench_structures.
# This may be replaced when dependencies are built.
