file(REMOVE_RECURSE
  "../bench/gbench_structures"
  "../bench/gbench_structures.pdb"
  "CMakeFiles/gbench_structures.dir/gbench_structures.cpp.o"
  "CMakeFiles/gbench_structures.dir/gbench_structures.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gbench_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
