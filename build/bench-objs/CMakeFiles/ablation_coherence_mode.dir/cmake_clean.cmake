file(REMOVE_RECURSE
  "../bench/ablation_coherence_mode"
  "../bench/ablation_coherence_mode.pdb"
  "CMakeFiles/ablation_coherence_mode.dir/ablation_coherence_mode.cpp.o"
  "CMakeFiles/ablation_coherence_mode.dir/ablation_coherence_mode.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coherence_mode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
