# Empty compiler generated dependencies file for ablation_coherence_mode.
# This may be replaced when dependencies are built.
