file(REMOVE_RECURSE
  "../bench/table1_interconnects"
  "../bench/table1_interconnects.pdb"
  "CMakeFiles/table1_interconnects.dir/table1_interconnects.cpp.o"
  "CMakeFiles/table1_interconnects.dir/table1_interconnects.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_interconnects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
