# Empty dependencies file for fig7_twosided_bw.
# This may be replaced when dependencies are built.
