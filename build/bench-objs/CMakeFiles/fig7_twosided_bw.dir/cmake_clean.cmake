file(REMOVE_RECURSE
  "../bench/fig7_twosided_bw"
  "../bench/fig7_twosided_bw.pdb"
  "CMakeFiles/fig7_twosided_bw.dir/fig7_twosided_bw.cpp.o"
  "CMakeFiles/fig7_twosided_bw.dir/fig7_twosided_bw.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_twosided_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
