file(REMOVE_RECURSE
  "../bench/ablation_hash"
  "../bench/ablation_hash.pdb"
  "CMakeFiles/ablation_hash.dir/ablation_hash.cpp.o"
  "CMakeFiles/ablation_hash.dir/ablation_hash.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
