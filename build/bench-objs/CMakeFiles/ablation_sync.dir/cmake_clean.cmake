file(REMOVE_RECURSE
  "../bench/ablation_sync"
  "../bench/ablation_sync.pdb"
  "CMakeFiles/ablation_sync.dir/ablation_sync.cpp.o"
  "CMakeFiles/ablation_sync.dir/ablation_sync.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
