
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_queue.cpp" "bench-objs/CMakeFiles/ablation_queue.dir/ablation_queue.cpp.o" "gcc" "bench-objs/CMakeFiles/ablation_queue.dir/ablation_queue.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/osu/CMakeFiles/cmpi_osu.dir/DependInfo.cmake"
  "/root/repo/build/src/coll/CMakeFiles/cmpi_coll.dir/DependInfo.cmake"
  "/root/repo/build/src/p2p/CMakeFiles/cmpi_p2p.dir/DependInfo.cmake"
  "/root/repo/build/src/queue/CMakeFiles/cmpi_queue.dir/DependInfo.cmake"
  "/root/repo/build/src/rma/CMakeFiles/cmpi_rma.dir/DependInfo.cmake"
  "/root/repo/build/src/fabric/CMakeFiles/cmpi_fabric.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cmpi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/arena/CMakeFiles/cmpi_arena.dir/DependInfo.cmake"
  "/root/repo/build/src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/cmpi_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
