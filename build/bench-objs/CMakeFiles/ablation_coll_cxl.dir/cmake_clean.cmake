file(REMOVE_RECURSE
  "../bench/ablation_coll_cxl"
  "../bench/ablation_coll_cxl.pdb"
  "CMakeFiles/ablation_coll_cxl.dir/ablation_coll_cxl.cpp.o"
  "CMakeFiles/ablation_coll_cxl.dir/ablation_coll_cxl.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coll_cxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
