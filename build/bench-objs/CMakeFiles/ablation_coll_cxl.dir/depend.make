# Empty dependencies file for ablation_coll_cxl.
# This may be replaced when dependencies are built.
