# Empty compiler generated dependencies file for multiprocess_arena.
# This may be replaced when dependencies are built.
