file(REMOVE_RECURSE
  "../examples/multiprocess_arena"
  "../examples/multiprocess_arena.pdb"
  "CMakeFiles/multiprocess_arena.dir/multiprocess_arena.cpp.o"
  "CMakeFiles/multiprocess_arena.dir/multiprocess_arena.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocess_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
