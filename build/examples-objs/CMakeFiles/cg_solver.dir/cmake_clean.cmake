file(REMOVE_RECURSE
  "../examples/cg_solver"
  "../examples/cg_solver.pdb"
  "CMakeFiles/cg_solver.dir/cg_solver.cpp.o"
  "CMakeFiles/cg_solver.dir/cg_solver.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cg_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
