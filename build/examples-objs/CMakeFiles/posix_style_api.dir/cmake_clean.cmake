file(REMOVE_RECURSE
  "../examples/posix_style_api"
  "../examples/posix_style_api.pdb"
  "CMakeFiles/posix_style_api.dir/posix_style_api.cpp.o"
  "CMakeFiles/posix_style_api.dir/posix_style_api.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/posix_style_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
