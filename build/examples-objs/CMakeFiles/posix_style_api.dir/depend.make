# Empty dependencies file for posix_style_api.
# This may be replaced when dependencies are built.
