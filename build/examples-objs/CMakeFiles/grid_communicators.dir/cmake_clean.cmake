file(REMOVE_RECURSE
  "../examples/grid_communicators"
  "../examples/grid_communicators.pdb"
  "CMakeFiles/grid_communicators.dir/grid_communicators.cpp.o"
  "CMakeFiles/grid_communicators.dir/grid_communicators.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_communicators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
