# Empty dependencies file for grid_communicators.
# This may be replaced when dependencies are built.
