file(REMOVE_RECURSE
  "../examples/halo_exchange"
  "../examples/halo_exchange.pdb"
  "CMakeFiles/halo_exchange.dir/halo_exchange.cpp.o"
  "CMakeFiles/halo_exchange.dir/halo_exchange.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/halo_exchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
