# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples-objs
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_halo_exchange "/root/repo/build/examples/halo_exchange")
set_tests_properties(example_halo_exchange PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cg_solver "/root/repo/build/examples/cg_solver")
set_tests_properties(example_cg_solver PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multiprocess_arena "/root/repo/build/examples/multiprocess_arena")
set_tests_properties(example_multiprocess_arena PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_posix_style_api "/root/repo/build/examples/posix_style_api")
set_tests_properties(example_posix_style_api PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grid_communicators "/root/repo/build/examples/grid_communicators")
set_tests_properties(example_grid_communicators PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
