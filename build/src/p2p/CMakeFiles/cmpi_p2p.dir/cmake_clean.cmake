file(REMOVE_RECURSE
  "CMakeFiles/cmpi_p2p.dir/endpoint.cpp.o"
  "CMakeFiles/cmpi_p2p.dir/endpoint.cpp.o.d"
  "libcmpi_p2p.a"
  "libcmpi_p2p.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_p2p.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
