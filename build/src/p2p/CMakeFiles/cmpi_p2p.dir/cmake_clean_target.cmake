file(REMOVE_RECURSE
  "libcmpi_p2p.a"
)
