# Empty dependencies file for cmpi_p2p.
# This may be replaced when dependencies are built.
