
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simtime/busy_resource.cpp" "src/simtime/CMakeFiles/cmpi_simtime.dir/busy_resource.cpp.o" "gcc" "src/simtime/CMakeFiles/cmpi_simtime.dir/busy_resource.cpp.o.d"
  "/root/repo/src/simtime/loggp.cpp" "src/simtime/CMakeFiles/cmpi_simtime.dir/loggp.cpp.o" "gcc" "src/simtime/CMakeFiles/cmpi_simtime.dir/loggp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
