# Empty compiler generated dependencies file for cmpi_simtime.
# This may be replaced when dependencies are built.
