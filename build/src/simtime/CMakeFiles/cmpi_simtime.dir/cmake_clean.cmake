file(REMOVE_RECURSE
  "CMakeFiles/cmpi_simtime.dir/busy_resource.cpp.o"
  "CMakeFiles/cmpi_simtime.dir/busy_resource.cpp.o.d"
  "CMakeFiles/cmpi_simtime.dir/loggp.cpp.o"
  "CMakeFiles/cmpi_simtime.dir/loggp.cpp.o.d"
  "libcmpi_simtime.a"
  "libcmpi_simtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_simtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
