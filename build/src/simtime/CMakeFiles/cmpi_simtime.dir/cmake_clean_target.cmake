file(REMOVE_RECURSE
  "libcmpi_simtime.a"
)
