
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cxlsim/accessor.cpp" "src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/accessor.cpp.o" "gcc" "src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/accessor.cpp.o.d"
  "/root/repo/src/cxlsim/cache_sim.cpp" "src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/cache_sim.cpp.o" "gcc" "src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/cache_sim.cpp.o.d"
  "/root/repo/src/cxlsim/dax_device.cpp" "src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/dax_device.cpp.o" "gcc" "src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/dax_device.cpp.o.d"
  "/root/repo/src/cxlsim/timing.cpp" "src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/timing.cpp.o" "gcc" "src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/timing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmpi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/cmpi_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
