file(REMOVE_RECURSE
  "libcmpi_cxlsim.a"
)
