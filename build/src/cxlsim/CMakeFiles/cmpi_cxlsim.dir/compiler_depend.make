# Empty compiler generated dependencies file for cmpi_cxlsim.
# This may be replaced when dependencies are built.
