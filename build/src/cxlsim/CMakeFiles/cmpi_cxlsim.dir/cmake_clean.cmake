file(REMOVE_RECURSE
  "CMakeFiles/cmpi_cxlsim.dir/accessor.cpp.o"
  "CMakeFiles/cmpi_cxlsim.dir/accessor.cpp.o.d"
  "CMakeFiles/cmpi_cxlsim.dir/cache_sim.cpp.o"
  "CMakeFiles/cmpi_cxlsim.dir/cache_sim.cpp.o.d"
  "CMakeFiles/cmpi_cxlsim.dir/dax_device.cpp.o"
  "CMakeFiles/cmpi_cxlsim.dir/dax_device.cpp.o.d"
  "CMakeFiles/cmpi_cxlsim.dir/timing.cpp.o"
  "CMakeFiles/cmpi_cxlsim.dir/timing.cpp.o.d"
  "libcmpi_cxlsim.a"
  "libcmpi_cxlsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_cxlsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
