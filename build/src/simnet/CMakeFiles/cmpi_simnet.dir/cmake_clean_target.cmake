file(REMOVE_RECURSE
  "libcmpi_simnet.a"
)
