file(REMOVE_RECURSE
  "CMakeFiles/cmpi_simnet.dir/apps.cpp.o"
  "CMakeFiles/cmpi_simnet.dir/apps.cpp.o.d"
  "CMakeFiles/cmpi_simnet.dir/engine.cpp.o"
  "CMakeFiles/cmpi_simnet.dir/engine.cpp.o.d"
  "libcmpi_simnet.a"
  "libcmpi_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
