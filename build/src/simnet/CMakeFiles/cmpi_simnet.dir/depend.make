# Empty dependencies file for cmpi_simnet.
# This may be replaced when dependencies are built.
