file(REMOVE_RECURSE
  "CMakeFiles/cmpi_common.dir/cli.cpp.o"
  "CMakeFiles/cmpi_common.dir/cli.cpp.o.d"
  "CMakeFiles/cmpi_common.dir/log.cpp.o"
  "CMakeFiles/cmpi_common.dir/log.cpp.o.d"
  "CMakeFiles/cmpi_common.dir/status.cpp.o"
  "CMakeFiles/cmpi_common.dir/status.cpp.o.d"
  "CMakeFiles/cmpi_common.dir/units.cpp.o"
  "CMakeFiles/cmpi_common.dir/units.cpp.o.d"
  "libcmpi_common.a"
  "libcmpi_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
