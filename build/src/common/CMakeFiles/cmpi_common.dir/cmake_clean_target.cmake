file(REMOVE_RECURSE
  "libcmpi_common.a"
)
