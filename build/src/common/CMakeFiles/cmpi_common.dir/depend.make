# Empty dependencies file for cmpi_common.
# This may be replaced when dependencies are built.
