# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("simtime")
subdirs("cxlsim")
subdirs("arena")
subdirs("queue")
subdirs("runtime")
subdirs("p2p")
subdirs("rma")
subdirs("coll")
subdirs("fabric")
subdirs("simnet")
subdirs("osu")
subdirs("core")
