file(REMOVE_RECURSE
  "CMakeFiles/cmpi_fabric.dir/net_fabric.cpp.o"
  "CMakeFiles/cmpi_fabric.dir/net_fabric.cpp.o.d"
  "CMakeFiles/cmpi_fabric.dir/profiles.cpp.o"
  "CMakeFiles/cmpi_fabric.dir/profiles.cpp.o.d"
  "libcmpi_fabric.a"
  "libcmpi_fabric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
