# Empty dependencies file for cmpi_fabric.
# This may be replaced when dependencies are built.
