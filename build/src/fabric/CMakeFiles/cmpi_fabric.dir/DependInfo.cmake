
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fabric/net_fabric.cpp" "src/fabric/CMakeFiles/cmpi_fabric.dir/net_fabric.cpp.o" "gcc" "src/fabric/CMakeFiles/cmpi_fabric.dir/net_fabric.cpp.o.d"
  "/root/repo/src/fabric/profiles.cpp" "src/fabric/CMakeFiles/cmpi_fabric.dir/profiles.cpp.o" "gcc" "src/fabric/CMakeFiles/cmpi_fabric.dir/profiles.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/simtime/CMakeFiles/cmpi_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/cmpi_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/arena/CMakeFiles/cmpi_arena.dir/DependInfo.cmake"
  "/root/repo/build/src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
