file(REMOVE_RECURSE
  "libcmpi_fabric.a"
)
