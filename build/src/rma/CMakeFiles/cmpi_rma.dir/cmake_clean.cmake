file(REMOVE_RECURSE
  "CMakeFiles/cmpi_rma.dir/window.cpp.o"
  "CMakeFiles/cmpi_rma.dir/window.cpp.o.d"
  "libcmpi_rma.a"
  "libcmpi_rma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_rma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
