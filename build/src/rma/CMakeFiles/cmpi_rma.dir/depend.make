# Empty dependencies file for cmpi_rma.
# This may be replaced when dependencies are built.
