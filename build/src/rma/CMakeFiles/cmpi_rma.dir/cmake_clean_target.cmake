file(REMOVE_RECURSE
  "libcmpi_rma.a"
)
