# Empty compiler generated dependencies file for cmpi_arena.
# This may be replaced when dependencies are built.
