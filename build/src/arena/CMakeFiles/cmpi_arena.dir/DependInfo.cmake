
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arena/arena.cpp" "src/arena/CMakeFiles/cmpi_arena.dir/arena.cpp.o" "gcc" "src/arena/CMakeFiles/cmpi_arena.dir/arena.cpp.o.d"
  "/root/repo/src/arena/bakery_lock.cpp" "src/arena/CMakeFiles/cmpi_arena.dir/bakery_lock.cpp.o" "gcc" "src/arena/CMakeFiles/cmpi_arena.dir/bakery_lock.cpp.o.d"
  "/root/repo/src/arena/capi.cpp" "src/arena/CMakeFiles/cmpi_arena.dir/capi.cpp.o" "gcc" "src/arena/CMakeFiles/cmpi_arena.dir/capi.cpp.o.d"
  "/root/repo/src/arena/famfs_lite.cpp" "src/arena/CMakeFiles/cmpi_arena.dir/famfs_lite.cpp.o" "gcc" "src/arena/CMakeFiles/cmpi_arena.dir/famfs_lite.cpp.o.d"
  "/root/repo/src/arena/multilevel_hash.cpp" "src/arena/CMakeFiles/cmpi_arena.dir/multilevel_hash.cpp.o" "gcc" "src/arena/CMakeFiles/cmpi_arena.dir/multilevel_hash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cmpi_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/cmpi_simtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
