file(REMOVE_RECURSE
  "libcmpi_arena.a"
)
