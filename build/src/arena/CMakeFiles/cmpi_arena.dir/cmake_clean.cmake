file(REMOVE_RECURSE
  "CMakeFiles/cmpi_arena.dir/arena.cpp.o"
  "CMakeFiles/cmpi_arena.dir/arena.cpp.o.d"
  "CMakeFiles/cmpi_arena.dir/bakery_lock.cpp.o"
  "CMakeFiles/cmpi_arena.dir/bakery_lock.cpp.o.d"
  "CMakeFiles/cmpi_arena.dir/capi.cpp.o"
  "CMakeFiles/cmpi_arena.dir/capi.cpp.o.d"
  "CMakeFiles/cmpi_arena.dir/famfs_lite.cpp.o"
  "CMakeFiles/cmpi_arena.dir/famfs_lite.cpp.o.d"
  "CMakeFiles/cmpi_arena.dir/multilevel_hash.cpp.o"
  "CMakeFiles/cmpi_arena.dir/multilevel_hash.cpp.o.d"
  "libcmpi_arena.a"
  "libcmpi_arena.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_arena.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
