file(REMOVE_RECURSE
  "CMakeFiles/cmpi_queue.dir/queue_matrix.cpp.o"
  "CMakeFiles/cmpi_queue.dir/queue_matrix.cpp.o.d"
  "CMakeFiles/cmpi_queue.dir/spsc_ring.cpp.o"
  "CMakeFiles/cmpi_queue.dir/spsc_ring.cpp.o.d"
  "libcmpi_queue.a"
  "libcmpi_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
