file(REMOVE_RECURSE
  "libcmpi_queue.a"
)
