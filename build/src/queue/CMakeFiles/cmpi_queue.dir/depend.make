# Empty dependencies file for cmpi_queue.
# This may be replaced when dependencies are built.
