file(REMOVE_RECURSE
  "CMakeFiles/cmpi_runtime.dir/seq_barrier.cpp.o"
  "CMakeFiles/cmpi_runtime.dir/seq_barrier.cpp.o.d"
  "CMakeFiles/cmpi_runtime.dir/universe.cpp.o"
  "CMakeFiles/cmpi_runtime.dir/universe.cpp.o.d"
  "libcmpi_runtime.a"
  "libcmpi_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
