file(REMOVE_RECURSE
  "libcmpi_runtime.a"
)
