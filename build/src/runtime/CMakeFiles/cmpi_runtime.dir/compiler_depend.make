# Empty compiler generated dependencies file for cmpi_runtime.
# This may be replaced when dependencies are built.
