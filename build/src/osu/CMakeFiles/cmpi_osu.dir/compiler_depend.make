# Empty compiler generated dependencies file for cmpi_osu.
# This may be replaced when dependencies are built.
