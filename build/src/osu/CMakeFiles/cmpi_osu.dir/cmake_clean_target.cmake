file(REMOVE_RECURSE
  "libcmpi_osu.a"
)
