file(REMOVE_RECURSE
  "CMakeFiles/cmpi_osu.dir/drivers.cpp.o"
  "CMakeFiles/cmpi_osu.dir/drivers.cpp.o.d"
  "CMakeFiles/cmpi_osu.dir/report.cpp.o"
  "CMakeFiles/cmpi_osu.dir/report.cpp.o.d"
  "libcmpi_osu.a"
  "libcmpi_osu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_osu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
