file(REMOVE_RECURSE
  "libcmpi_coll.a"
)
