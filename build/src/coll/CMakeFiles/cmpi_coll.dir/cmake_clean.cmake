file(REMOVE_RECURSE
  "CMakeFiles/cmpi_coll.dir/collectives.cpp.o"
  "CMakeFiles/cmpi_coll.dir/collectives.cpp.o.d"
  "CMakeFiles/cmpi_coll.dir/cxl_collectives.cpp.o"
  "CMakeFiles/cmpi_coll.dir/cxl_collectives.cpp.o.d"
  "libcmpi_coll.a"
  "libcmpi_coll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cmpi_coll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
