# Empty dependencies file for cmpi_coll.
# This may be replaced when dependencies are built.
