# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/simtime_test[1]_include.cmake")
include("/root/repo/build/tests/cxlsim_test[1]_include.cmake")
include("/root/repo/build/tests/arena_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/queue_test[1]_include.cmake")
include("/root/repo/build/tests/p2p_test[1]_include.cmake")
include("/root/repo/build/tests/rma_test[1]_include.cmake")
include("/root/repo/build/tests/coll_test[1]_include.cmake")
include("/root/repo/build/tests/fabric_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/osu_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
