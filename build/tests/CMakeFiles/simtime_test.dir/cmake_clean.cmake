file(REMOVE_RECURSE
  "CMakeFiles/simtime_test.dir/simtime/busy_resource_test.cpp.o"
  "CMakeFiles/simtime_test.dir/simtime/busy_resource_test.cpp.o.d"
  "CMakeFiles/simtime_test.dir/simtime/loggp_test.cpp.o"
  "CMakeFiles/simtime_test.dir/simtime/loggp_test.cpp.o.d"
  "CMakeFiles/simtime_test.dir/simtime/order_insensitivity_test.cpp.o"
  "CMakeFiles/simtime_test.dir/simtime/order_insensitivity_test.cpp.o.d"
  "CMakeFiles/simtime_test.dir/simtime/vclock_test.cpp.o"
  "CMakeFiles/simtime_test.dir/simtime/vclock_test.cpp.o.d"
  "simtime_test"
  "simtime_test.pdb"
  "simtime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simtime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
