file(REMOVE_RECURSE
  "CMakeFiles/arena_test.dir/arena/arena_test.cpp.o"
  "CMakeFiles/arena_test.dir/arena/arena_test.cpp.o.d"
  "CMakeFiles/arena_test.dir/arena/bakery_lock_test.cpp.o"
  "CMakeFiles/arena_test.dir/arena/bakery_lock_test.cpp.o.d"
  "CMakeFiles/arena_test.dir/arena/capi_test.cpp.o"
  "CMakeFiles/arena_test.dir/arena/capi_test.cpp.o.d"
  "CMakeFiles/arena_test.dir/arena/famfs_lite_test.cpp.o"
  "CMakeFiles/arena_test.dir/arena/famfs_lite_test.cpp.o.d"
  "CMakeFiles/arena_test.dir/arena/multilevel_hash_test.cpp.o"
  "CMakeFiles/arena_test.dir/arena/multilevel_hash_test.cpp.o.d"
  "CMakeFiles/arena_test.dir/arena/paper_scale_test.cpp.o"
  "CMakeFiles/arena_test.dir/arena/paper_scale_test.cpp.o.d"
  "arena_test"
  "arena_test.pdb"
  "arena_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arena_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
