
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arena/arena_test.cpp" "tests/CMakeFiles/arena_test.dir/arena/arena_test.cpp.o" "gcc" "tests/CMakeFiles/arena_test.dir/arena/arena_test.cpp.o.d"
  "/root/repo/tests/arena/bakery_lock_test.cpp" "tests/CMakeFiles/arena_test.dir/arena/bakery_lock_test.cpp.o" "gcc" "tests/CMakeFiles/arena_test.dir/arena/bakery_lock_test.cpp.o.d"
  "/root/repo/tests/arena/capi_test.cpp" "tests/CMakeFiles/arena_test.dir/arena/capi_test.cpp.o" "gcc" "tests/CMakeFiles/arena_test.dir/arena/capi_test.cpp.o.d"
  "/root/repo/tests/arena/famfs_lite_test.cpp" "tests/CMakeFiles/arena_test.dir/arena/famfs_lite_test.cpp.o" "gcc" "tests/CMakeFiles/arena_test.dir/arena/famfs_lite_test.cpp.o.d"
  "/root/repo/tests/arena/multilevel_hash_test.cpp" "tests/CMakeFiles/arena_test.dir/arena/multilevel_hash_test.cpp.o" "gcc" "tests/CMakeFiles/arena_test.dir/arena/multilevel_hash_test.cpp.o.d"
  "/root/repo/tests/arena/paper_scale_test.cpp" "tests/CMakeFiles/arena_test.dir/arena/paper_scale_test.cpp.o" "gcc" "tests/CMakeFiles/arena_test.dir/arena/paper_scale_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arena/CMakeFiles/cmpi_arena.dir/DependInfo.cmake"
  "/root/repo/build/src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/cmpi_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
