
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cxlsim/accessor_test.cpp" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/accessor_test.cpp.o" "gcc" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/accessor_test.cpp.o.d"
  "/root/repo/tests/cxlsim/cache_sim_test.cpp" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/cache_sim_test.cpp.o" "gcc" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/cache_sim_test.cpp.o.d"
  "/root/repo/tests/cxlsim/dax_device_test.cpp" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/dax_device_test.cpp.o" "gcc" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/dax_device_test.cpp.o.d"
  "/root/repo/tests/cxlsim/hw_coherence_test.cpp" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/hw_coherence_test.cpp.o" "gcc" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/hw_coherence_test.cpp.o.d"
  "/root/repo/tests/cxlsim/timing_test.cpp" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/timing_test.cpp.o" "gcc" "tests/CMakeFiles/cxlsim_test.dir/cxlsim/timing_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cxlsim/CMakeFiles/cmpi_cxlsim.dir/DependInfo.cmake"
  "/root/repo/build/src/simtime/CMakeFiles/cmpi_simtime.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/cmpi_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
