file(REMOVE_RECURSE
  "CMakeFiles/cxlsim_test.dir/cxlsim/accessor_test.cpp.o"
  "CMakeFiles/cxlsim_test.dir/cxlsim/accessor_test.cpp.o.d"
  "CMakeFiles/cxlsim_test.dir/cxlsim/cache_sim_test.cpp.o"
  "CMakeFiles/cxlsim_test.dir/cxlsim/cache_sim_test.cpp.o.d"
  "CMakeFiles/cxlsim_test.dir/cxlsim/dax_device_test.cpp.o"
  "CMakeFiles/cxlsim_test.dir/cxlsim/dax_device_test.cpp.o.d"
  "CMakeFiles/cxlsim_test.dir/cxlsim/hw_coherence_test.cpp.o"
  "CMakeFiles/cxlsim_test.dir/cxlsim/hw_coherence_test.cpp.o.d"
  "CMakeFiles/cxlsim_test.dir/cxlsim/timing_test.cpp.o"
  "CMakeFiles/cxlsim_test.dir/cxlsim/timing_test.cpp.o.d"
  "cxlsim_test"
  "cxlsim_test.pdb"
  "cxlsim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cxlsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
