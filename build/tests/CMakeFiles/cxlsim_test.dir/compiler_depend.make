# Empty compiler generated dependencies file for cxlsim_test.
# This may be replaced when dependencies are built.
