// The Table 2 C API, end to end: the paper designs the CXL SHM Arena's
// surface to mirror POSIX shared memory (shm_open/shm_unlink) so that
// swapping the MPI library's SHM layer "only requires API-level changes".
// This example is that usage pattern, written the way the MPICH
// integration would call it:
//
//   cxl_shm_init()                      <-  shm_open era: mmap /dev/dax
//   cxl_shm_create(name, size, &obj)    <-  shm_open(O_CREAT) + ftruncate
//   cxl_shm_open(name, &obj)            <-  shm_open(O_RDWR)
//   ... load/store through the mapping ...
//   cxl_shm_close(obj)                  <-  munmap
//   cxl_shm_destroy(obj)                <-  shm_unlink
//   cxl_shm_finalize()
//
//   $ build/examples/posix_style_api
#include <cstdio>
#include <cstring>

#include "arena/capi.hpp"
#include "common/units.hpp"
#include "core/cmpi.hpp"

int main() {
  using namespace cmpi;
  using namespace cmpi::arena;

  runtime::UniverseConfig config;
  config.nodes = 2;
  config.ranks_per_node = 1;
  config.pool_size = 64_MiB;
  runtime::Universe universe(config);

  universe.run([](runtime::RankCtx& ctx) {
    // The runtime equivalent of mmap'ing the dax device: bind this rank's
    // arena as the C API's context, then "initialize" it.
    arena::cxl_shm_set_context(&ctx.arena());
    if (cxl_shm_init() != 0) {
      std::fprintf(stderr, "init failed: %s\n", arena::cxl_shm_last_error());
      return;
    }

    constexpr char kName[] = "posix_style_object";
    constexpr char kPayload[] = "created through the Table 2 API";

    if (ctx.rank() == 0) {
      arena::CxlShmObject* object = nullptr;
      if (cxl_shm_create(kName, 4096, &object) != 0) {
        std::fprintf(stderr, "create failed: %s\n",
                     arena::cxl_shm_last_error());
        return;
      }
      std::printf("[rank 0] cxl_shm_create('%s', 4096) -> offset %#lx\n",
                  kName,
                  static_cast<unsigned long>(cxl_shm_obj_offset(object)));
      // "memcpy into the mapping": a coherent store through the accessor.
      ctx.acc().coherent_write(
          cxl_shm_obj_offset(object),
          {reinterpret_cast<const std::byte*>(kPayload), sizeof kPayload});
      ctx.barrier();  // publish
      ctx.barrier();  // wait for the reader
      if (cxl_shm_destroy(object) != 0) {
        std::fprintf(stderr, "destroy failed: %s\n",
                     arena::cxl_shm_last_error());
      } else {
        std::printf("[rank 0] cxl_shm_destroy: object unlinked\n");
      }
    } else {
      ctx.barrier();  // wait for the writer
      arena::CxlShmObject* object = nullptr;
      if (cxl_shm_open(kName, &object) != 0) {
        std::fprintf(stderr, "open failed: %s\n",
                     arena::cxl_shm_last_error());
        return;
      }
      char buffer[64] = {};
      ctx.acc().coherent_read(
          cxl_shm_obj_offset(object),
          {reinterpret_cast<std::byte*>(buffer), sizeof buffer});
      std::printf("[rank 1] cxl_shm_open('%s') -> %zu bytes: \"%s\"\n",
                  kName, cxl_shm_obj_size(object), buffer);
      cxl_shm_close(object);
      ctx.barrier();  // let the writer destroy
    }
    cxl_shm_finalize();
    arena::cxl_shm_set_context(nullptr);
  });
  return 0;
}
