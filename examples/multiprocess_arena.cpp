// Multi-process arena: genuine cross-address-space CXL SHM sharing.
//
// The thread-rank mode used by the tests and benches shares one address
// space; this example demonstrates the property the real system actually
// relies on — the pool is a memfd ("dax device") that distinct PROCESSES
// map and coordinate through, with no shared program state:
//
//   parent (node 0)  forks  child (node 1)
//   parent formats the arena, creates an object, writes it (coherent),
//     and posts a CXL-resident flag;
//   child attaches the arena by name through its own CacheSim (a separate
//     coherence domain), opens the object, and validates the contents;
//   the bakery lock (plain loads/stores, process-shared) serializes a
//     shared counter update from both sides.
//
// Timing note: the functional pool is shared via the memfd; each process
// has its own copy of the device *timing* state after fork, so virtual
// clocks are per-process here (documented limitation of fork mode).
//
//   $ build/examples/multiprocess_arena
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "arena/arena.hpp"
#include "arena/bakery_lock.hpp"
#include "common/units.hpp"
#include "cxlsim/accessor.hpp"

namespace {

using namespace cmpi;

constexpr std::uint64_t kArenaBase = 4096;
constexpr std::uint64_t kFlagOffset = 512;     // below the arena
constexpr std::uint64_t kLockOffset = 1024;    // below the arena
constexpr const char* kObjectName = "greeting";
constexpr const char* kCounterName = "shared_counter";
constexpr char kMessage[] = "written by the parent process";

struct NodeView {
  cxlsim::CacheSim cache;
  simtime::VClock clock;
  cxlsim::Accessor acc;
  explicit NodeView(cxlsim::DaxDevice& device)
      : cache(device), acc(device, cache, clock) {}
};

int child_main(cxlsim::DaxDevice& device) {
  NodeView node(device);
  // Wait for the parent's "arena ready" flag (CXL-resident).
  while (node.acc.peek_flag(kFlagOffset).value != 1) {
    usleep(1000);
  }
  auto arena_obj =
      check_ok(arena::Arena::attach(node.acc, kArenaBase, /*participant=*/1));
  auto handle = check_ok(arena_obj.open(kObjectName));
  char buffer[sizeof kMessage] = {};
  node.acc.coherent_read(handle.pool_offset,
                         {reinterpret_cast<std::byte*>(buffer),
                          sizeof buffer});
  std::printf("[child %d] opened '%s' (%zu bytes): \"%s\"\n", getpid(),
              kObjectName, static_cast<std::size_t>(handle.size), buffer);
  if (std::strcmp(buffer, kMessage) != 0) {
    std::fprintf(stderr, "[child] FAIL: contents mismatch\n");
    return 1;
  }

  // Locked read-modify-write on a shared counter: no atomics, just the
  // bakery lock over plain CXL SHM accesses.
  auto counter = check_ok(arena_obj.open(kCounterName));
  const auto lock = check_ok(arena::BakeryLock::attach(node.acc, kLockOffset));
  for (int i = 0; i < 1000; ++i) {
    arena::BakeryLock::Guard guard(lock, node.acc, 1);
    std::uint64_t value = 0;
    node.acc.coherent_read(counter.pool_offset,
                           {reinterpret_cast<std::byte*>(&value), 8});
    ++value;
    node.acc.coherent_write(counter.pool_offset,
                            {reinterpret_cast<const std::byte*>(&value), 8});
  }
  node.acc.publish_flag(kFlagOffset + 64, 1);  // child done
  return 0;
}

}  // namespace

int main() {
  auto device = check_ok(cxlsim::DaxDevice::create(64_MiB, /*heads=*/2));
  std::printf("created pooled device: %zu MiB memfd (fd %d)\n",
              device->size() >> 20, device->fd());
  std::fflush(stdout);  // don't duplicate buffered output across fork()

  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    return 1;
  }
  if (pid == 0) {
    return child_main(*device);
  }

  NodeView node(*device);
  arena::Arena::Params params;
  params.levels = 4;
  params.level1_buckets = 127;
  params.max_participants = 2;
  auto arena_obj = check_ok(arena::Arena::format(
      node.acc, kArenaBase, 32_MiB, /*participant=*/0, params));
  auto handle = check_ok(arena_obj.create(kObjectName, sizeof kMessage));
  node.acc.coherent_write(handle.pool_offset,
                          {reinterpret_cast<const std::byte*>(kMessage),
                           sizeof kMessage});
  auto counter = check_ok(arena_obj.create(kCounterName, 8));
  const std::uint64_t zero = 0;
  node.acc.coherent_write(counter.pool_offset,
                          {reinterpret_cast<const std::byte*>(&zero), 8});
  arena::BakeryLock::format(node.acc, kLockOffset, 2);
  std::printf("[parent %d] formatted arena, created '%s' and '%s'\n",
              getpid(), kObjectName, kCounterName);
  node.acc.publish_flag(kFlagOffset, 1);  // arena ready

  // Contend on the counter with the child.
  for (int i = 0; i < 1000; ++i) {
    const auto lock =
        check_ok(arena::BakeryLock::attach(node.acc, kLockOffset));
    arena::BakeryLock::Guard guard(lock, node.acc, 0);
    std::uint64_t value = 0;
    node.acc.coherent_read(counter.pool_offset,
                           {reinterpret_cast<std::byte*>(&value), 8});
    ++value;
    node.acc.coherent_write(counter.pool_offset,
                            {reinterpret_cast<const std::byte*>(&value), 8});
  }
  // Wait for the child's increments too.
  while (node.acc.peek_flag(kFlagOffset + 64).value != 1) {
    usleep(1000);
  }
  int status = 0;
  waitpid(pid, &status, 0);

  std::uint64_t total = 0;
  node.acc.coherent_read(counter.pool_offset,
                         {reinterpret_cast<std::byte*>(&total), 8});
  std::printf("[parent] shared counter after 2 x 1000 locked increments: "
              "%lu (%s)\n",
              static_cast<unsigned long>(total),
              total == 2000 ? "PASS" : "FAIL");
  const bool child_ok =
      WIFEXITED(status) && WEXITSTATUS(status) == 0;
  return (total == 2000 && child_ok) ? 0 : 1;
}
