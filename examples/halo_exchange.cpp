// Halo exchange: 1D heat diffusion (explicit finite differences) with the
// domain strip-partitioned across ranks and ghost cells exchanged with
// nonblocking cMPI send/recv each step — the communication pattern that
// dominates stencil codes like the paper's miniAMR case study.
//
// The distributed result is verified against a single-rank serial sweep,
// so the example doubles as an end-to-end correctness check of the
// nonblocking path.
//
//   $ build/examples/halo_exchange [--cells=4096] [--steps=200] [--ranks=4]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/cmpi.hpp"

namespace {

/// One explicit diffusion step on [1, n-1) with fixed boundary values.
void diffuse(std::vector<double>& next, const std::vector<double>& cur,
             double alpha) {
  for (std::size_t i = 1; i + 1 < cur.size(); ++i) {
    next[i] = cur[i] + alpha * (cur[i - 1] - 2 * cur[i] + cur[i + 1]);
  }
}

std::vector<double> initial_field(std::size_t cells) {
  std::vector<double> field(cells, 0.0);
  for (std::size_t i = 0; i < cells; ++i) {
    // A hot bump in the middle of the rod.
    const double x = (static_cast<double>(i) / cells - 0.5) * 8;
    field[i] = std::exp(-x * x);
  }
  return field;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmpi;
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const std::size_t cells = args.get_size("cells", 4096);
  const int steps = static_cast<int>(args.get_int("steps", 200));
  const unsigned ranks = static_cast<unsigned>(args.get_int("ranks", 4));
  constexpr double kAlpha = 0.25;

  // Serial reference.
  std::vector<double> reference = initial_field(cells);
  {
    std::vector<double> next = reference;
    for (int s = 0; s < steps; ++s) {
      diffuse(next, reference, kAlpha);
      std::swap(next, reference);
    }
  }

  runtime::UniverseConfig config;
  config.nodes = ranks;  // one rank per simulated node: all halos inter-node
  config.ranks_per_node = 1;
  config.pool_size = 128_MiB;
  runtime::Universe universe(config);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const int rank = mpi.rank();
    const int nranks = mpi.size();
    const std::size_t local = cells / static_cast<std::size_t>(nranks);
    const std::size_t begin = static_cast<std::size_t>(rank) * local;

    // Local strip with one ghost cell on each side.
    const std::vector<double> init = initial_field(cells);
    std::vector<double> cur(local + 2, 0.0);
    std::vector<double> next(local + 2, 0.0);
    for (std::size_t i = 0; i < local; ++i) {
      cur[i + 1] = init[begin + i];
    }

    const int left = rank - 1;
    const int right = rank + 1;
    const double start_ns = mpi.now_ns();
    for (int s = 0; s < steps; ++s) {
      // Nonblocking ghost exchange with both neighbors.
      std::vector<RequestPtr> requests;
      if (left >= 0) {
        requests.push_back(mpi.irecv(
            left, 0, std::as_writable_bytes(std::span(&cur[0], 1))));
        requests.push_back(
            mpi.isend(left, 0, std::as_bytes(std::span(&cur[1], 1))));
      }
      if (right < nranks) {
        requests.push_back(mpi.irecv(
            right, 0,
            std::as_writable_bytes(std::span(&cur[local + 1], 1))));
        requests.push_back(
            mpi.isend(right, 0, std::as_bytes(std::span(&cur[local], 1))));
      }
      check_ok(mpi.wait_all(requests));
      diffuse(next, cur, kAlpha);
      // Global domain boundaries stay fixed.
      if (rank == 0) {
        next[1] = cur[1];
      }
      if (rank == nranks - 1) {
        next[local] = cur[local];
      }
      std::swap(cur, next);
    }
    const double elapsed_us = (mpi.now_ns() - start_ns) / 1e3;

    // Verify against the serial reference.
    double max_error = 0;
    for (std::size_t i = 0; i < local; ++i) {
      max_error = std::max(max_error,
                           std::abs(cur[i + 1] - reference[begin + i]));
    }
    std::vector<double> global_error{max_error};
    mpi.allreduce(global_error, ReduceOp::kMax);
    if (rank == 0) {
      std::printf("halo_exchange: %zu cells, %d steps, %d ranks\n", cells,
                  steps, nranks);
      std::printf("  max |distributed - serial| = %.3e  (%s)\n",
                  global_error[0],
                  global_error[0] < 1e-12 ? "PASS" : "FAIL");
      std::printf("  simulated time: %.1f us (%.2f us/step)\n", elapsed_us,
                  elapsed_us / steps);
    }
    if (global_error[0] >= 1e-12) {
      throw std::runtime_error("distributed result diverged");
    }
  });
  return 0;
}
