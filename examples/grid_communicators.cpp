// A 2D processor grid built with communicators — the structure NPB CG
// (the paper's scaling workload) uses: ranks arranged in rows and
// columns, with row-wise partial reductions and a per-row shared window
// created through §3.2's root-creates-and-broadcasts flow.
//
//   $ build/examples/grid_communicators [--rows=2] [--cols=2]
#include <cstdio>
#include <numeric>
#include <vector>

#include "common/cli.hpp"
#include "core/cmpi.hpp"

int main(int argc, char** argv) {
  using namespace cmpi;
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const int rows = static_cast<int>(args.get_int("rows", 2));
  const int cols = static_cast<int>(args.get_int("cols", 2));

  runtime::UniverseConfig config;
  config.nodes = static_cast<unsigned>(rows);
  config.ranks_per_node = static_cast<unsigned>(cols);
  config.pool_size = 128_MiB;
  runtime::Universe universe(config);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const int my_row = mpi.rank() / cols;
    const int my_col = mpi.rank() % cols;

    // MPI_Comm_split twice: once by row, once by column.
    auto row_comm = mpi.split(/*color=*/my_row, /*key=*/my_col);
    auto col_comm = mpi.split(/*color=*/my_col, /*key=*/my_row);
    check_ok(row_comm.has_value() ? Status::ok()
                                  : status::internal("row split failed"));
    check_ok(col_comm.has_value() ? Status::ok()
                                  : status::internal("col split failed"));

    // Row-wise partial dot product (what CG does along processor rows),
    // then a column-wise reduction of the row results.
    std::vector<double> partial{static_cast<double>(mpi.rank() + 1)};
    row_comm->allreduce(partial, ReduceOp::kSum);
    const double row_sum = partial[0];
    col_comm->allreduce(partial, ReduceOp::kSum);
    const double grid_sum = partial[0];
    const double expected =
        mpi.size() * (mpi.size() + 1) / 2.0;  // 1 + 2 + ... + n
    if (mpi.rank() == 0) {
      std::printf("grid %dx%d: row sum at row 0 = %.0f, grid sum = %.0f "
                  "(expected %.0f) %s\n",
                  rows, cols, row_sum, grid_sum, expected,
                  grid_sum == expected ? "PASS" : "FAIL");
    }

    // Per-row shared window (§3.2's communicator flow): each row member
    // deposits its column id; the row root reads the whole row directly.
    rma::Window row_win = row_comm->create_window(ctx, sizeof(double));
    const double mine = static_cast<double>(my_col * 10 + my_row);
    row_win.write_local(0, std::as_bytes(std::span(&mine, 1)));
    row_win.fence();
    if (row_comm->rank() == 0) {
      double sum = 0;
      for (int c = 0; c < row_comm->size(); ++c) {
        double value = 0;
        row_win.get(c, 0, std::as_writable_bytes(std::span(&value, 1)));
        sum += value;
      }
      std::printf("row %d window sweep: sum of deposits = %.0f\n", my_row,
                  sum);
    }
    row_win.fence();
    row_win.free();
    mpi.barrier();
  });
  return 0;
}
