// Quickstart: the smallest complete cMPI program.
//
// Builds a two-node simulated CXL universe, runs one rank per node, and
// exercises the three communication styles the paper covers: two-sided
// send/recv through the SPSC ring matrix, one-sided put with PSCW
// synchronization, and a collective (allreduce) built on point-to-point.
//
//   $ build/examples/quickstart
#include <array>
#include <cstdio>
#include <vector>

#include "core/cmpi.hpp"

int main() {
  using namespace cmpi;

  runtime::UniverseConfig config;
  config.nodes = 2;
  config.ranks_per_node = 1;
  config.pool_size = 64_MiB;

  runtime::Universe universe(config);
  universe.run([](runtime::RankCtx& ctx) {
    Session mpi(ctx);  // MPI_Init equivalent (collective)

    // --- Two-sided: rank 0 sends a greeting to rank 1 ---
    if (mpi.rank() == 0) {
      const char text[] = "hello over CXL shared memory";
      check_ok(mpi.send(1, /*tag=*/0,
                        {reinterpret_cast<const std::byte*>(text),
                         sizeof text}));
    } else {
      char buffer[64] = {};
      const RecvInfo info = check_ok(
          mpi.recv(0, 0, {reinterpret_cast<std::byte*>(buffer),
                          sizeof buffer}));
      std::printf("[rank 1] received %zu bytes from rank %d: \"%s\"\n",
                  info.bytes, info.source, buffer);
    }

    // --- One-sided: rank 0 puts a value into rank 1's window ---
    rma::Window window = mpi.create_window("quickstart", 4096);
    const std::array<int, 1> origin{0};
    const std::array<int, 1> target{1};
    if (mpi.rank() == 0) {
      window.start(target);
      const double value = 42.0;
      window.put(1, 0, std::as_bytes(std::span(&value, 1)));
      window.complete(target);
    } else {
      window.post(origin);
      window.wait(origin);
      double value = 0;
      window.read_local(0, std::as_writable_bytes(std::span(&value, 1)));
      std::printf("[rank 1] one-sided put delivered: %.1f\n", value);
    }
    window.free();

    // --- Collective: allreduce over cMPI point-to-point (§3.6) ---
    std::vector<double> sum{static_cast<double>(mpi.rank() + 1)};
    mpi.allreduce(sum, ReduceOp::kSum);
    if (mpi.rank() == 0) {
      std::printf("[rank 0] allreduce(1 + 2) = %.1f\n", sum[0]);
      std::printf("[rank 0] simulated time elapsed: %.1f us\n",
                  mpi.now_ns() / 1e3);
    }
  });
  return 0;
}
