// Distributed conjugate gradient over cMPI — a working miniature of the
// NPB CG workload the paper's scaling study simulates (§4.4).
//
// Solves A x = b for the 1D Laplacian (tridiagonal, SPD) with the rows
// block-partitioned across ranks. Each iteration needs exactly the
// communication CG is known for: halo exchange for the distributed SpMV
// and two dot-product allreduces — all over CXL shared memory.
//
//   $ build/examples/cg_solver [--n=8192] [--ranks=4] [--tol=1e-8]
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/cli.hpp"
#include "core/cmpi.hpp"

namespace {

using namespace cmpi;

/// Distributed tridiagonal SpMV: y = A x, A = tridiag(-1, 2, -1).
/// `x` has one ghost element at each end, exchanged with the neighbors.
void spmv(Session& mpi, std::vector<double>& x_with_ghosts,
          std::vector<double>& y) {
  const int rank = mpi.rank();
  const int nranks = mpi.size();
  const std::size_t local = y.size();
  std::vector<RequestPtr> requests;
  if (rank > 0) {
    requests.push_back(mpi.irecv(
        rank - 1, 1, std::as_writable_bytes(std::span(&x_with_ghosts[0], 1))));
    requests.push_back(mpi.isend(
        rank - 1, 1, std::as_bytes(std::span(&x_with_ghosts[1], 1))));
  }
  if (rank + 1 < nranks) {
    requests.push_back(mpi.irecv(
        rank + 1, 1,
        std::as_writable_bytes(std::span(&x_with_ghosts[local + 1], 1))));
    requests.push_back(mpi.isend(
        rank + 1, 1, std::as_bytes(std::span(&x_with_ghosts[local], 1))));
  }
  check_ok(mpi.wait_all(requests));
  for (std::size_t i = 0; i < local; ++i) {
    y[i] = 2 * x_with_ghosts[i + 1] - x_with_ghosts[i] -
           x_with_ghosts[i + 2];
  }
}

double dot(Session& mpi, const std::vector<double>& a,
           const std::vector<double>& b) {
  double partial = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    partial += a[i] * b[i];
  }
  std::vector<double> sum{partial};
  mpi.allreduce(sum, ReduceOp::kSum);
  return sum[0];
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const std::size_t n = args.get_size("n", 8192);
  const unsigned ranks = static_cast<unsigned>(args.get_int("ranks", 4));
  const double tol = 1e-8;
  const int max_iters = static_cast<int>(args.get_int("max-iters", 20000));

  runtime::UniverseConfig config;
  config.nodes = 2;
  config.ranks_per_node = (ranks + 1) / 2;
  config.pool_size = 128_MiB;
  runtime::Universe universe(config);

  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const std::size_t local = n / static_cast<std::size_t>(mpi.size());

    // b = A * ones, so the exact solution is x = ones.
    std::vector<double> ones(local + 2, 1.0);
    if (mpi.rank() == 0) {
      ones[0] = 0;  // domain boundary ghost
    }
    if (mpi.rank() == mpi.size() - 1) {
      ones[local + 1] = 0;
    }
    std::vector<double> b(local);
    // Ghosts of the all-ones vector are 1 except at the global ends;
    // compute b directly (no comm needed for this setup step).
    for (std::size_t i = 0; i < local; ++i) {
      b[i] = 2 * ones[i + 1] - ones[i] - ones[i + 2];
    }

    std::vector<double> x(local + 2, 0.0);   // with ghosts
    std::vector<double> r = b;               // r = b - A*0
    std::vector<double> p(local + 2, 0.0);   // with ghosts
    for (std::size_t i = 0; i < local; ++i) {
      p[i + 1] = r[i];
    }
    std::vector<double> ap(local);

    double rho = dot(mpi, r, r);
    const double target = tol * tol * rho;
    int iters = 0;
    const double start_ns = mpi.now_ns();
    while (rho > target && iters < max_iters) {
      spmv(mpi, p, ap);
      double p_dot_ap = 0;
      for (std::size_t i = 0; i < local; ++i) {
        p_dot_ap += p[i + 1] * ap[i];
      }
      std::vector<double> sum{p_dot_ap};
      mpi.allreduce(sum, ReduceOp::kSum);
      const double alpha = rho / sum[0];
      for (std::size_t i = 0; i < local; ++i) {
        x[i + 1] += alpha * p[i + 1];
        r[i] -= alpha * ap[i];
      }
      const double rho_next = dot(mpi, r, r);
      const double beta = rho_next / rho;
      rho = rho_next;
      for (std::size_t i = 0; i < local; ++i) {
        p[i + 1] = r[i] + beta * p[i + 1];
      }
      ++iters;
    }
    const double elapsed_ms = (mpi.now_ns() - start_ns) / 1e6;

    // Verify: x should be all ones.
    double max_error = 0;
    for (std::size_t i = 0; i < local; ++i) {
      max_error = std::max(max_error, std::abs(x[i + 1] - 1.0));
    }
    std::vector<double> global_error{max_error};
    mpi.allreduce(global_error, ReduceOp::kMax);
    if (mpi.rank() == 0) {
      std::printf("cg_solver: n=%zu, ranks=%d\n", n, mpi.size());
      std::printf("  converged in %d iterations, residual^2 %.3e\n", iters,
                  rho);
      std::printf("  max |x - 1| = %.3e  (%s)\n", global_error[0],
                  global_error[0] < 1e-6 ? "PASS" : "FAIL");
      std::printf("  simulated time: %.2f ms (%.1f us/iteration)\n",
                  elapsed_ms, elapsed_ms * 1e3 / std::max(iters, 1));
    }
    if (global_error[0] >= 1e-6) {
      throw std::runtime_error("CG did not converge to the exact solution");
    }
  });
  return 0;
}
