// Figure 5: bandwidth of one-sided MPI communication (MPI_Put streaming,
// half origins / half targets, message sizes 1 B - 8 MiB).
//
// Paper shape targets: CXL SHM beats TCP/Ethernet by up to ~71.6x; beats
// TCP/CX-6 Dx by up to ~3.7x for <=16 KiB; saturates ~8.6 GB/s at 16
// procs and declines past 16 KiB; TCP/CX-6 Dx overtakes beyond 16 KiB at
// high process counts.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace cmpi;
  const bench::FigureOptions opts = bench::parse_options(argc, argv);
  osu::FigureTable table(
      "Figure 5: bandwidth of one-sided MPI communication", "Size", "MB/s");
  bench::run_standard_sweep(opts, table, osu::cxl_onesided_bw_mbps,
                            osu::net_onesided_bw_mbps);
  bench::finish(table, opts);
  bench::print_headline_ratios(table, opts, /*higher_is_better=*/true);
  return 0;
}
