// Figure 10h: hierarchical vs flat collectives across pods of CXL pools.
//
// Part A (real stack): allreduce latency over fabric::PodCluster — pods
// of runtime::Universes stitched by per-pod routers — comparing the flat
// single-tier recursive doubling (every cross-pod pair squeezing through
// the serial router forwarding path) against the three-phase hierarchical
// algorithm (pod reduce, router tree, pod fan-out). Both run over the
// SAME fabric timing model, so the ratio isolates the algorithm.
//
// Built-in gates (exit 1 on failure):
//   * hierarchical beats flat by >= 1.5x at 128 ranks / 4 pods (2 KiB);
//   * a 1-pod cluster delegates to the pre-hierarchy coll::allreduce
//     (the algorithm-selection rule): zero cross-pod fabric messages and
//     averaged latency within run-to-run noise of the pre-change path.
//
// Part B (event simulator): CG and miniAMR strong scaling at 64-256 ranks
// across 2-16 pods, flat vs hierarchical allreduce (informational).
//
// Emits BENCH_fig10h.json (Part A table + topology telemetry digest).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "figure_common.hpp"
#include "obs/obs.hpp"
#include "osu/drivers.hpp"
#include "osu/report.hpp"
#include "simnet/apps.hpp"

namespace {

struct PodShape {
  int pods;
  int ranks_per_pod;
};

std::string series_name(const char* algo, const PodShape& shape) {
  return std::string(algo) + " (" +
         std::to_string(shape.pods * shape.ranks_per_pod) + "r, " +
         std::to_string(shape.pods) + " pods)";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cmpi;
  // Metrics on so the JSON telemetry digest carries the topology
  // descriptor and pod-fabric traffic counters.
  obs::Config obs_cfg;
  obs_cfg.metrics = true;
  obs::configure(obs_cfg);

  const auto args = check_ok(CliArgs::parse(argc, argv));
  const int iters = static_cast<int>(args.get_int("iters", 3));
  const int warmup = static_cast<int>(args.get_int("warmup", 1));
  const bool csv = args.get_bool("csv");
  const bool skip_simnet = args.get_bool("skip-simnet");
  const std::string json_path =
      args.get_string("json", "BENCH_fig10h.json");
  for (const auto& flag : args.unused_flags()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  const std::vector<std::size_t> sizes{8, 2048, 65536};
  const std::vector<PodShape> shapes{{4, 16}, {4, 32}};  // 64r, 128r

  osu::FigureTable table(
      "Figure 10h: allreduce across pods, flat vs hierarchical", "Size",
      "us");

  const auto sweep = [&](const PodShape& shape, osu::HierMode mode) {
    osu::HierAllreduceParams params;
    params.pods = shape.pods;
    params.ranks_per_pod = shape.ranks_per_pod;
    params.sizes = sizes;
    params.iters = iters;
    params.warmup = warmup;
    params.mode = mode;
    return osu::hier_allreduce_latency_us(params);
  };

  bool gates_ok = true;

  // --- Part A: real stack, flat vs hierarchical ---
  for (const PodShape& shape : shapes) {
    const auto flat = sweep(shape, osu::HierMode::kFlat);
    const auto hier = sweep(shape, osu::HierMode::kHier);
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.set(series_name("flat", shape), sizes[i], flat[i]);
      table.set(series_name("hier", shape), sizes[i], hier[i]);
      std::printf("  %3dr / %2d pods  %7zu B: flat %10.2f us  hier %10.2f us"
                  "  (%.2fx)\n",
                  shape.pods * shape.ranks_per_pod, shape.pods, sizes[i],
                  flat[i], hier[i], flat[i] / hier[i]);
    }
    if (shape.pods == 4 && shape.ranks_per_pod == 32) {
      const double ratio = flat[1] / hier[1];  // 2 KiB
      std::printf("  GATE hier>=1.5x flat @128r/4p (2 KiB): %.2fx %s\n",
                  ratio, ratio >= 1.5 ? "PASS" : "FAIL");
      if (ratio < 1.5) {
        gates_ok = false;
      }
    }
  }

  // --- Gate: a 1-pod cluster runs the pre-hierarchy collectives ---
  //
  // HierColl at pods == 1 delegates straight to coll::allreduce, so the
  // code path is the pre-change one by construction. Virtual time is not
  // exactly reproducible across independent runs (whether a message lands
  // expected or unexpected is a real scheduling race and charges one host
  // copy more or less, as in real MPI), so the gate checks the two things
  // that ARE deterministic: zero cross-pod fabric traffic, and agreement
  // of the averaged latency within a tolerance that run-to-run noise of
  // the SAME binary stays well inside.
  {
    osu::HierAllreduceParams params;
    params.pods = 1;
    params.ranks_per_pod = 16;
    params.sizes = sizes;
    params.iters = std::max(iters, 30);
    params.warmup = warmup;
    const auto fabric_msgs = [] {
      return obs::MetricsRegistry::instance().snapshot().counter(
          "pods.fabric.messages");
    };
    const std::uint64_t msgs_before = fabric_msgs();
    params.mode = osu::HierMode::kHier;
    const auto hier1 = osu::hier_allreduce_latency_us(params);
    params.mode = osu::HierMode::kDirect;
    const auto direct1 = osu::hier_allreduce_latency_us(params);
    const std::uint64_t msgs_after = fabric_msgs();

    bool identical = msgs_after == msgs_before;
    if (!identical) {
      std::printf("  1-pod run sent %llu cross-pod fabric messages\n",
                  static_cast<unsigned long long>(msgs_after - msgs_before));
    }
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      const double rel =
          std::abs(hier1[i] - direct1[i]) / std::max(direct1[i], 1e-9);
      if (rel > 0.25) {
        identical = false;
        std::printf("  1-pod mismatch at %zu B: hier %.2f us vs direct "
                    "%.2f us (%.0f%%)\n",
                    sizes[i], hier1[i], direct1[i], 100 * rel);
      }
    }
    std::printf("  GATE 1-pod identical to pre-hierarchy allreduce "
                "(0 fabric msgs, latency within noise): %s\n",
                identical ? "PASS" : "FAIL");
    if (!identical) {
      gates_ok = false;
    }
  }

  table.print(std::cout);
  if (csv) {
    table.print_csv(std::cout);
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 2;
    }
    osu::FigureTable annotated = table;
    annotated.set_telemetry(bench::telemetry_digest());
    annotated.print_json(
        out, {{"iters", std::to_string(iters)},
              {"warmup", std::to_string(warmup)},
              {"shapes", "4x16,4x32"},
              {"gate", "hier>=1.5x flat @128r/4p (2 KiB); 1-pod identity"}});
    std::printf("  wrote %s\n", json_path.c_str());
  }

  // --- Part B: strong scaling over the event simulator ---
  if (!skip_simnet) {
    osu::FigureTable cg_comm(
        "Figure 10h': CG communication time across pods", "Pods", "ms");
    osu::FigureTable amr_comm(
        "Figure 10h'': miniAMR communication time across pods", "Pods",
        "ms");
    struct SimShape {
      int nodes;
      int nodes_per_pod;
    };
    // (pods, ranks): (2,64) (4,128) (8,256) (16,256) at 8 ranks/node.
    const std::vector<SimShape> sim_shapes{{8, 4}, {16, 4}, {32, 4}, {32, 2}};
    for (const SimShape& s : sim_shapes) {
      for (const bool hier : {false, true}) {
        simnet::ClusterConfig cluster;
        cluster.nodes = s.nodes;
        cluster.nodes_per_pod = s.nodes_per_pod;
        cluster.hierarchical_collectives = hier;
        const int pods = cluster.pods();
        const int ranks = cluster.nodes * cluster.ranks_per_node;
        const char* name = hier ? "hierarchical" : "flat";

        simnet::CgParams cg;
        cg.outer_iters = 3;
        const simnet::AppResult cg_r = simnet::run_cg(cluster, cg);
        cg_comm.set(name, static_cast<std::size_t>(pods),
                    cg_r.comm_time / 1e6);

        simnet::MiniAmrParams amr;
        amr.timesteps = 50;
        const simnet::AppResult amr_r = simnet::run_miniamr(cluster, amr);
        amr_comm.set(name, static_cast<std::size_t>(pods),
                     amr_r.comm_time / 1e6);
        std::printf("  simnet %-12s %3d ranks / %2d pods: CG comm %8.1f ms"
                    "  miniAMR comm %8.1f ms\n",
                    name, ranks, pods, cg_r.comm_time / 1e6,
                    amr_r.comm_time / 1e6);
      }
    }
    for (const auto* t : {&cg_comm, &amr_comm}) {
      t->print(std::cout);
      if (csv) {
        t->print_csv(std::cout);
      }
    }
  }

  return gates_ok ? 0 : 1;
}
