// Ablation: SPSC ring matrix (§3.3) vs a lock-protected shared MPSC
// receive queue.
//
// MPICH's shared-memory channel uses one lock-free MPSC receive queue per
// process — but lock-free MPSC needs atomic RMW, which the pooled CXL
// device lacks across heads. The fallback would be a single queue guarded
// by a software lock (the bakery lock, the only mutual exclusion plain
// loads/stores can build). cMPI's answer is the pairwise SPSC matrix,
// which needs no coordination at all. This bench measures aggregate
// message rate, N senders -> one receiver, under both designs.
#include <cstdio>
#include <iostream>
#include <thread>
#include <vector>

#include "arena/bakery_lock.hpp"
#include "common/cli.hpp"
#include "common/units.hpp"
#include "osu/report.hpp"
#include "queue/spsc_ring.hpp"

namespace {

using namespace cmpi;

constexpr std::size_t kCells = 8;
constexpr std::size_t kPayload = 256;
constexpr int kMessagesPerSender = 100;

struct Node {
  std::unique_ptr<cxlsim::CacheSim> cache;
  std::unique_ptr<cxlsim::Accessor> acc;
  simtime::VClock clock;
};

std::unique_ptr<Node> make_node(cxlsim::DaxDevice& device) {
  auto node = std::make_unique<Node>();
  node->cache = std::make_unique<cxlsim::CacheSim>(device);
  node->acc = std::make_unique<cxlsim::Accessor>(device, *node->cache,
                                                 node->clock);
  return node;
}

queue::CellHeader header_for(int sender, std::size_t bytes) {
  queue::CellHeader h{};
  h.src_rank = static_cast<std::uint64_t>(sender);
  h.total_bytes = bytes;
  h.chunk_bytes = bytes;
  h.flags = queue::kLastChunk;
  return h;
}

/// SPSC matrix: one private ring per sender; receiver polls them all.
double spsc_matrix_rate(int senders) {
  auto device = check_ok(cxlsim::DaxDevice::create(64_MiB));
  auto boot = make_node(*device);
  const std::size_t stride =
      align_up(queue::SpscRing::footprint(kCells, kPayload), 4096);
  for (int s = 0; s < senders; ++s) {
    queue::SpscRing::format(*boot->acc, 4096 + s * stride, kCells, kPayload);
  }
  std::vector<std::byte> payload(kPayload, std::byte{1});
  std::vector<std::thread> threads;
  std::vector<double> end_times(static_cast<std::size_t>(senders) + 1, 0);
  for (int s = 0; s < senders; ++s) {
    threads.emplace_back([&, s] {
      auto node = make_node(*device);
      auto ring = check_ok(queue::SpscRing::attach(*node->acc, 4096 + s * stride));
      for (int m = 0; m < kMessagesPerSender; ++m) {
        while (!ring.try_enqueue(*node->acc, header_for(s, kPayload),
                                 payload)) {
          std::this_thread::yield();
        }
      }
      end_times[static_cast<std::size_t>(s)] = node->clock.now();
    });
  }
  threads.emplace_back([&] {
    auto node = make_node(*device);
    std::vector<queue::SpscRing> rings;
    for (int s = 0; s < senders; ++s) {
      rings.push_back(
          check_ok(queue::SpscRing::attach(*node->acc, 4096 + s * stride)));
    }
    std::vector<std::byte> out(kPayload);
    int received = 0;
    queue::CellHeader h{};
    while (received < senders * kMessagesPerSender) {
      bool any = false;
      for (auto& ring : rings) {
        if (ring.try_dequeue(*node->acc, h, out)) {
          ++received;
          any = true;
        }
      }
      if (!any) {
        std::this_thread::yield();
      }
    }
    end_times.back() = node->clock.now();
  });
  for (auto& t : threads) {
    t.join();
  }
  const double end = *std::max_element(end_times.begin(), end_times.end());
  return senders * kMessagesPerSender / end * 1e9;  // msgs/s
}

/// Shared MPSC queue emulated over non-atomic CXL SHM: one cell array,
/// shared head/tail flags, and every enqueue/dequeue inside the bakery
/// lock (the only mutual exclusion plain loads/stores can build). Layout
/// mirrors the documented SpscRing layout: tail flag at +0, head flag at
/// +64, cells from +192.
double locked_shared_queue_rate(int senders) {
  auto device = check_ok(cxlsim::DaxDevice::create(64_MiB));
  auto boot = make_node(*device);
  const auto lock =
      arena::BakeryLock::format(*boot->acc, 4096,
                                static_cast<std::size_t>(senders) + 1);
  constexpr std::uint64_t kBase = 65536;
  constexpr std::uint64_t kTailFlag = kBase;
  constexpr std::uint64_t kHeadFlag = kBase + 64;
  constexpr std::uint64_t kCellsAt = kBase + 192;
  constexpr std::size_t kSharedCells = kCells * 4;
  constexpr std::size_t kStride = sizeof(queue::CellHeader) + kPayload;
  boot->acc->publish_flag(kTailFlag, 0);
  boot->acc->publish_flag(kHeadFlag, 0);

  std::vector<std::byte> payload(kPayload, std::byte{1});
  std::vector<std::thread> threads;
  std::vector<double> end_times(static_cast<std::size_t>(senders) + 1, 0);
  for (int s = 0; s < senders; ++s) {
    threads.emplace_back([&, s] {
      auto node = make_node(*device);
      cxlsim::Accessor& acc = *node->acc;
      int sent = 0;
      while (sent < kMessagesPerSender) {
        arena::BakeryLock::Guard guard(lock, acc,
                                       static_cast<std::size_t>(s));
        const auto tail = acc.peek_flag(kTailFlag);
        const auto head = acc.peek_flag(kHeadFlag);
        acc.absorb_flag(tail);
        if (tail.value - head.value >= kSharedCells) {
          continue;  // full; release the lock and retry
        }
        const std::uint64_t cell =
            kCellsAt + (tail.value % kSharedCells) * kStride;
        acc.bulk_write(cell + sizeof(queue::CellHeader), payload);
        const queue::CellHeader h = header_for(s, kPayload);
        acc.nt_store(cell, {reinterpret_cast<const std::byte*>(&h),
                            sizeof h});
        acc.publish_flag(kTailFlag, tail.value + 1);
        ++sent;
      }
      end_times[static_cast<std::size_t>(s)] = node->clock.now();
    });
  }
  threads.emplace_back([&] {
    auto node = make_node(*device);
    cxlsim::Accessor& acc = *node->acc;
    std::vector<std::byte> out(kPayload);
    int received = 0;
    while (received < senders * kMessagesPerSender) {
      arena::BakeryLock::Guard guard(
          lock, acc, static_cast<std::size_t>(senders));
      const auto tail = acc.peek_flag(kTailFlag);
      const auto head = acc.peek_flag(kHeadFlag);
      acc.absorb_flag(tail);
      if (tail.value == head.value) {
        std::this_thread::yield();
        continue;
      }
      const std::uint64_t cell =
          kCellsAt + (head.value % kSharedCells) * kStride;
      acc.bulk_read(cell + sizeof(queue::CellHeader), out);
      acc.publish_flag(kHeadFlag, head.value + 1);
      ++received;
    }
    end_times.back() = node->clock.now();
  });
  for (auto& t : threads) {
    t.join();
  }
  const double end = *std::max_element(end_times.begin(), end_times.end());
  return senders * kMessagesPerSender / end * 1e9;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const bool csv = args.get_bool("csv");
  osu::FigureTable table(
      "Ablation: SPSC ring matrix vs lock-protected shared queue",
      "Senders", "msg/s");
  for (const int senders : {1, 2, 4}) {
    table.set("SPSC matrix", static_cast<std::size_t>(senders),
              spsc_matrix_rate(senders));
    table.set("locked shared queue", static_cast<std::size_t>(senders),
              locked_shared_queue_rate(senders));
  }
  table.print(std::cout);
  if (csv) {
    table.print_csv(std::cout);
  }
  std::printf("\n  the lock adds two CXL round-trip-heavy acquisitions per"
              " message and serializes all senders\n");
  return 0;
}
