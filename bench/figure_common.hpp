// Shared scaffolding for the figure benches: flag parsing, the standard
// transports-x-procs sweep of Figs. 5-8, and ratio annotations.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "fabric/profiles.hpp"
#include "obs/obs.hpp"
#include "osu/drivers.hpp"
#include "osu/report.hpp"

namespace cmpi::bench {

struct FigureOptions {
  std::vector<int> procs{2, 8, 16};
  std::size_t max_size = 8u * 1024 * 1024;
  int iters = 6;
  int warmup = 2;
  std::size_t cell_payload = 64u * 1024;  // §4.2: tuned cell size
  bool csv = false;
  /// Two-sided rendezvous threshold (0 = library default of one cell
  /// payload). --eager-only pins it past any sweep size, measuring the
  /// pre-rendezvous chunked path.
  std::size_t rendezvous_threshold = 0;
  bool eager_only = false;
  /// When non-empty, the primary table is also written here as JSON.
  std::string json_path;
};

inline std::vector<int> parse_proc_list(const std::string& text) {
  std::vector<int> out;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    out.push_back(std::atoi(item.c_str()));
  }
  return out;
}

/// Common flags: --procs=2,8,16  --max-size=8M  --iters=N  --cell=64K --csv
/// --rdvz=SIZE  --eager-only  --json=PATH
inline FigureOptions parse_options(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  FigureOptions opts;
  const std::string procs = args.get_string("procs", "2,8,16");
  opts.procs = parse_proc_list(procs);
  opts.max_size = args.get_size("max-size", opts.max_size);
  opts.iters = static_cast<int>(args.get_int("iters", opts.iters));
  opts.warmup = static_cast<int>(args.get_int("warmup", opts.warmup));
  opts.cell_payload = args.get_size("cell", opts.cell_payload);
  opts.csv = args.get_bool("csv");
  opts.rendezvous_threshold = args.get_size("rdvz", opts.rendezvous_threshold);
  opts.eager_only = args.get_bool("eager-only");
  if (opts.eager_only) {
    opts.rendezvous_threshold = ~std::size_t{0};
  }
  opts.json_path = args.get_string("json", "");
  for (const auto& flag : args.unused_flags()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    std::exit(2);
  }
  return opts;
}

inline osu::SweepParams sweep_params(const FigureOptions& opts, int procs) {
  osu::SweepParams params;
  params.sizes = osu::osu_sizes(opts.max_size);
  params.procs = procs;
  params.iters = opts.iters;
  params.warmup = opts.warmup;
  params.cell_payload = opts.cell_payload;
  params.rendezvous_threshold = opts.rendezvous_threshold;
  return params;
}

/// Self-describing metadata for JSON artefacts: the knobs that move the
/// numbers, so a checked-in BENCH_*.json records its own provenance.
inline std::vector<std::pair<std::string, std::string>> json_metadata(
    const FigureOptions& opts) {
  const std::size_t effective_threshold =
      opts.rendezvous_threshold == 0 ? opts.cell_payload
                                     : opts.rendezvous_threshold;
  return {
      {"cell_payload", std::to_string(opts.cell_payload)},
      {"rendezvous_threshold",
       opts.eager_only ? "disabled" : std::to_string(effective_threshold)},
      {"iters", std::to_string(opts.iters)},
      {"warmup", std::to_string(opts.warmup)},
      {"max_size", std::to_string(opts.max_size)},
  };
}

/// Digest of the obs metrics registry for the JSON artefact's optional
/// "telemetry" section. Empty unless the run had CMPI_METRICS set (the
/// digest of a run without metrics would be all zeros — misleading, so it
/// is omitted entirely).
inline std::vector<std::pair<std::string, double>> telemetry_digest() {
  std::vector<std::pair<std::string, double>> out;
  if (!obs::metrics_enabled()) {
    return out;
  }
  const obs::MetricsSnapshot snap =
      obs::MetricsRegistry::instance().snapshot();
  const auto count = [&snap](const char* name) {
    return static_cast<double>(snap.counter(name));
  };
  const double hits = count("cache.hits");
  const double misses = count("cache.misses");
  if (hits + misses > 0) {
    out.emplace_back("cache_hit_rate", hits / (hits + misses));
  }
  out.emplace_back("retransmits", count("recovery.retransmits"));
  const double slot_reuse = count("p2p.rdvz_slot_reuse");
  const double slot_create = count("p2p.rdvz_slot_create");
  if (slot_reuse + slot_create > 0) {
    out.emplace_back("rendezvous_slot_reuse_rate",
                     slot_reuse / (slot_reuse + slot_create));
  }
  out.emplace_back("messages_sent", count("p2p.messages_sent"));
  out.emplace_back("rendezvous_sent", count("p2p.rendezvous_sent"));
  // Eager-vs-rendezvous split (message and byte volume per path), so a
  // bench artefact records which side of the switchover its traffic ran.
  out.emplace_back("eager_messages", count("p2p.eager_messages"));
  out.emplace_back("eager_bytes", count("p2p.eager_bytes"));
  out.emplace_back("rendezvous_bytes", count("p2p.rendezvous_bytes"));
  // Topology descriptor (multi-pool runs publish it as high-water gauges
  // at PodCluster::create; absent on single-pool benches).
  const auto gauge = [&snap](const char* name) {
    const auto it = snap.gauges.find(name);
    return it == snap.gauges.end() ? 0.0 : static_cast<double>(it->second);
  };
  if (gauge("topology.pods") > 0) {
    out.emplace_back("topology_pods", gauge("topology.pods"));
    out.emplace_back("topology_ranks_per_pod", gauge("topology.ranks_per_pod"));
    out.emplace_back("topology_router_local_rank",
                     gauge("topology.router_local_rank"));
    out.emplace_back("pod_fabric_messages", count("pods.fabric.messages"));
    out.emplace_back("pod_fabric_bytes", count("pods.fabric.bytes"));
  }
  return out;
}

/// Write the table to opts.json_path (if set) with standard metadata and,
/// when the run collected metrics, the telemetry digest.
inline void write_json(const osu::FigureTable& table,
                       const FigureOptions& opts) {
  if (opts.json_path.empty()) {
    return;
  }
  std::ofstream out(opts.json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n",
                 opts.json_path.c_str());
    std::exit(2);
  }
  osu::FigureTable annotated = table;
  annotated.set_telemetry(telemetry_digest());
  annotated.print_json(out, json_metadata(opts));
  std::printf("  wrote %s\n", opts.json_path.c_str());
}

/// Run the standard three-transport sweep of Figs. 5-8 and fill the table.
/// `cxl_fn` / `net_fn` are the matching osu driver functions.
inline void run_standard_sweep(
    const FigureOptions& opts, osu::FigureTable& table,
    const std::function<std::vector<double>(const osu::SweepParams&)>& cxl_fn,
    const std::function<std::vector<double>(const fabric::NicProfile&,
                                            const osu::SweepParams&)>&
        net_fn) {
  for (const int procs : opts.procs) {
    const osu::SweepParams params = sweep_params(opts, procs);
    const std::string suffix = " (" + std::to_string(procs) + "p)";
    {
      const auto values = cxl_fn(params);
      for (std::size_t i = 0; i < params.sizes.size(); ++i) {
        table.set("CXL SHM" + suffix, params.sizes[i], values[i]);
      }
    }
    for (const auto& profile :
         {fabric::tcp_ethernet(), fabric::tcp_cx6dx()}) {
      const auto values = net_fn(profile, params);
      const std::string name =
          (profile.name == "TCP over Ethernet" ? "TCP/Ethernet"
                                               : "TCP/CX-6 Dx") +
          suffix;
      for (std::size_t i = 0; i < params.sizes.size(); ++i) {
        table.set(name, params.sizes[i], values[i]);
      }
    }
  }
}

/// Print the paper-style "up to Nx" annotations for a bandwidth table
/// (higher is better) or latency table (lower is better).
inline void print_headline_ratios(const osu::FigureTable& table,
                                  const FigureOptions& opts,
                                  bool higher_is_better) {
  for (const int procs : opts.procs) {
    const std::string suffix = " (" + std::to_string(procs) + "p)";
    const std::string cxl = "CXL SHM" + suffix;
    for (const std::string base : {"TCP/Ethernet", "TCP/CX-6 Dx"}) {
      const std::string other = base + suffix;
      const double ratio =
          higher_is_better ? osu::max_ratio(table, cxl, other)
                           : osu::max_ratio(table, other, cxl);
      std::printf("  CXL SHM vs %-22s up to %.1fx %s\n", other.c_str(),
                  ratio, higher_is_better ? "higher bandwidth" : "lower latency");
    }
  }
}

inline void finish(const osu::FigureTable& table, const FigureOptions& opts) {
  table.print(std::cout);
  if (opts.csv) {
    table.print_csv(std::cout);
  }
}

}  // namespace cmpi::bench
