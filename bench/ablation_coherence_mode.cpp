// Ablation: the three coherence strategies of §3.5, end to end.
//
//   software   — write-back caching + clflushopt/sfence (cMPI's choice)
//   uncachable — MTRR marks the pool UC; correct without flushes but every
//                access is a serialized PCIe transaction (Fig. 11's spike)
//   hardware   — CXL 3.0 Back-Invalidate: plain cached accesses stay
//                coherent, but every miss/ownership change pays a snoop
//                round that grows with the number of attached caches (the
//                paper's scalability argument against it)
//
// Part 1 measures cMPI two-sided latency with the software vs uncachable
// pool (full stack). Part 2 measures a raw cacheline ping-pong between two
// nodes as idle caches are added to the coherence domain: hardware
// coherence starts cheaper than software flushing but loses its edge as
// the domain grows — while software coherence is flat, paying only for
// the lines actually shared.
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "core/cmpi.hpp"
#include "osu/report.hpp"

namespace {

using namespace cmpi;

double twosided_latency_us(bool uncachable, std::size_t size, int iters) {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  cfg.uncachable_pool = uncachable;
  runtime::Universe universe(cfg);
  double result = 0;
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    std::vector<std::byte> buffer(size);
    ctx.barrier();
    const double start = ctx.clock().now();
    for (int i = 0; i < iters; ++i) {
      if (mpi.rank() == 0) {
        check_ok(mpi.send(1, 0, buffer));
        check_ok(mpi.recv(1, 0, buffer).status());
      } else {
        check_ok(mpi.recv(0, 0, buffer).status());
        check_ok(mpi.send(0, 0, buffer));
      }
    }
    ctx.barrier();
    if (mpi.rank() == 0) {
      result = (ctx.clock().now() - start) / iters / 2.0 / 1e3;
    }
  });
  return result;
}

/// Raw line handoff A -> B, software coherence: A coherent-writes, B
/// coherent-reads (flush + invalidate discipline).
double sw_handoff_us(int total_caches, int rounds) {
  auto device = check_ok(cxlsim::DaxDevice::create(16_MiB));
  std::vector<std::unique_ptr<cxlsim::CacheSim>> idle;
  for (int i = 0; i < total_caches - 2; ++i) {
    idle.push_back(std::make_unique<cxlsim::CacheSim>(*device));
  }
  cxlsim::CacheSim cache_a(*device);
  cxlsim::CacheSim cache_b(*device);
  simtime::VClock clock_a;
  simtime::VClock clock_b;
  cxlsim::Accessor a(*device, cache_a, clock_a);
  cxlsim::Accessor b(*device, cache_b, clock_b);
  std::byte value[8] = {};
  for (int i = 0; i < rounds; ++i) {
    a.coherent_write(4096, value);
    b.clock().observe(a.clock().now());
    b.coherent_read(4096, value);
    a.clock().observe(b.clock().now());
  }
  return clock_b.now() / rounds / 1e3;
}

/// Raw line handoff under Back-Invalidate hardware coherence: plain
/// cached accesses, the device keeps the caches coherent.
double hw_handoff_us(int total_caches, int rounds) {
  cxlsim::CxlTimingParams params;
  params.hw_coherence = true;
  auto device = check_ok(cxlsim::DaxDevice::create(16_MiB, 4, params));
  std::vector<std::unique_ptr<cxlsim::CacheSim>> idle;
  for (int i = 0; i < total_caches - 2; ++i) {
    idle.push_back(std::make_unique<cxlsim::CacheSim>(*device));
  }
  cxlsim::CacheSim cache_a(*device);
  cxlsim::CacheSim cache_b(*device);
  simtime::VClock clock_a;
  simtime::VClock clock_b;
  cxlsim::Accessor a(*device, cache_a, clock_a);
  cxlsim::Accessor b(*device, cache_b, clock_b);
  std::byte value[8] = {};
  for (int i = 0; i < rounds; ++i) {
    a.store(4096, value);  // BI acquires ownership, no flush needed
    b.clock().observe(a.clock().now());
    b.load(4096, value);   // BI fetches the dirty line from A
    a.clock().observe(b.clock().now());
  }
  return clock_b.now() / rounds / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const int iters = static_cast<int>(args.get_int("iters", 20));
  const bool csv = args.get_bool("csv");

  osu::FigureTable e2e(
      "Ablation 1: cMPI two-sided latency, software coherence vs "
      "uncachable pool",
      "Size", "us");
  for (const std::size_t size : {8u, 256u, 2048u, 4096u, 16384u}) {
    e2e.set("software (flush)", size,
            twosided_latency_us(false, size, iters));
    e2e.set("uncachable", size, twosided_latency_us(true, size, iters));
  }
  e2e.print(std::cout);
  if (csv) {
    e2e.print_csv(std::cout);
  }
  std::printf("  the UC pool tracks software coherence for tiny messages "
              "and detonates past the PCIe MPS (paper §4.5)\n");

  osu::FigureTable handoff(
      "Ablation 2: cacheline handoff cost vs coherence-domain size",
      "Caches", "us/handoff");
  for (const int caches : {2, 4, 8, 16, 32}) {
    handoff.set("software (flush)", static_cast<std::size_t>(caches),
                sw_handoff_us(caches, 50));
    handoff.set("hardware (BI)", static_cast<std::size_t>(caches),
                hw_handoff_us(caches, 50));
  }
  handoff.print(std::cout);
  if (csv) {
    handoff.print_csv(std::cout);
  }
  std::printf("  software coherence is flat; BI snoop cost grows with every"
              " attached cache — the paper's case against hardware"
              " coherence at pool scale (§3.5)\n");
  return 0;
}
