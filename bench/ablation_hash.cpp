// Ablation: multi-level hash metadata index (§3.1) vs a linear-scan
// metadata directory.
//
// The CXL SHM Arena must find an object's slot with as few CXL SHM reads
// as possible — every probe is a coherent (flush + load) access. The
// multi-level hash probes at most L slots per name; a flat directory
// scans until it hits the name. This bench measures the virtual-time cost
// of opening objects under both designs as the object count grows.
#include <cstdio>
#include <iostream>
#include <string>

#include "arena/arena.hpp"
#include "common/cli.hpp"
#include "common/hash.hpp"
#include "common/units.hpp"
#include "osu/report.hpp"

namespace {

using namespace cmpi;

struct Fixture {
  std::unique_ptr<cxlsim::DaxDevice> device;
  std::unique_ptr<cxlsim::CacheSim> cache;
  std::unique_ptr<cxlsim::Accessor> acc;
  simtime::VClock clock;

  Fixture() {
    device = check_ok(cxlsim::DaxDevice::create(256_MiB));
    cache = std::make_unique<cxlsim::CacheSim>(*device);
    acc = std::make_unique<cxlsim::Accessor>(*device, *cache, clock);
  }
};

/// Average virtual ns per Arena::open with `objects` live objects.
double arena_open_cost_ns(int objects) {
  Fixture fx;
  arena::Arena::Params params;
  params.levels = 10;
  params.level1_buckets = 4099;
  params.max_participants = 2;
  arena::Arena arena_obj = check_ok(
      arena::Arena::format(*fx.acc, 0, 128_MiB, 0, params));
  for (int i = 0; i < objects; ++i) {
    check_ok(arena_obj.create("obj_" + std::to_string(i), 64));
  }
  fx.cache->drop_all();  // cold metadata, like a fresh process attach
  const double start = fx.clock.now();
  constexpr int kLookups = 200;
  for (int i = 0; i < kLookups; ++i) {
    // Spread lookups over the whole namespace.
    auto handle = check_ok(
        arena_obj.open("obj_" + std::to_string((i * 37) % objects)));
    check_ok(arena_obj.close(handle));
  }
  return (fx.clock.now() - start) / kLookups;
}

/// Average virtual ns to find a name by scanning a flat slot directory
/// (the naive dax-offset-management alternative, §3.1).
double linear_scan_cost_ns(int objects) {
  Fixture fx;
  // 128-byte slots, like the arena's; name check = one coherent read.
  constexpr std::size_t kSlot = 128;
  // Populate: names hashed into slot i.
  for (int i = 0; i < objects; ++i) {
    const std::uint64_t h = hash_string("obj_" + std::to_string(i));
    fx.acc->coherent_write(4096 + static_cast<std::uint64_t>(i) * kSlot,
                           {reinterpret_cast<const std::byte*>(&h), 8});
  }
  fx.cache->drop_all();
  const double start = fx.clock.now();
  constexpr int kLookups = 200;
  for (int i = 0; i < kLookups; ++i) {
    const std::uint64_t want =
        hash_string("obj_" + std::to_string((i * 37) % objects));
    for (int s = 0; s < objects; ++s) {
      std::uint64_t h = 0;
      fx.acc->coherent_read(4096 + static_cast<std::uint64_t>(s) * kSlot,
                            {reinterpret_cast<std::byte*>(&h), 8});
      if (h == want) {
        break;
      }
    }
  }
  return (fx.clock.now() - start) / kLookups;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const bool csv = args.get_bool("csv");
  osu::FigureTable table(
      "Ablation: multi-level hash vs linear metadata scan (open cost)",
      "Objects", "us/open");
  for (const int objects : {16, 64, 256, 1024}) {
    table.set("multi-level hash", static_cast<std::size_t>(objects),
              arena_open_cost_ns(objects) / 1e3);
    table.set("linear scan", static_cast<std::size_t>(objects),
              linear_scan_cost_ns(objects) / 1e3);
  }
  table.print(std::cout);
  if (csv) {
    table.print_csv(std::cout);
  }
  std::printf("\n  the hash probes <= 10 slots regardless of object count;"
              " the scan grows linearly\n");
  return 0;
}
