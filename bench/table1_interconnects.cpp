// Table 1: memory access latency and bandwidth over various interconnects
// and protocols (§2.2's 8-case comparison).
//
// Latency: 8-byte access (MLC-style for memory cases; zero-load one-way
// for network cases). Bandwidth: streaming / aggregated multi-thread.
// Cases 5 and 6 (RoCEv2 CX-3, InfiniBand CX-6) come from vendor-style
// model parameters, exactly as the paper takes them from product reports.
#include <array>
#include <cstdio>
#include <memory>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "cxlsim/accessor.hpp"
#include "fabric/profiles.hpp"
#include "simtime/loggp.hpp"

namespace {

using namespace cmpi;

struct Row {
  std::string name;
  double latency_ns;
  double bandwidth_bps;
};

/// 8 B access latency through a fresh accessor (MLC-style idle latency).
double cxl_latency_ns(bool with_flush) {
  auto device = check_ok(cxlsim::DaxDevice::create(16_MiB));
  cxlsim::CacheSim cache(*device);
  simtime::VClock clock;
  cxlsim::Accessor acc(*device, cache, clock);
  std::array<std::byte, 8> buf{};
  constexpr int kIters = 1000;
  const double start = clock.now();
  for (int i = 0; i < kIters; ++i) {
    const std::uint64_t offset = 4096 + static_cast<std::uint64_t>(i) * 64;
    if (with_flush) {
      // The §2 micro-benchmark: memset with cache flushing.
      acc.memset(offset, std::byte{1}, 8);
      acc.clflushopt(offset, 8);
      acc.sfence();
    } else {
      acc.load(offset, buf);  // cold line: pure device access latency
    }
  }
  return (clock.now() - start) / kIters;
}

/// Aggregated multi-thread streaming bandwidth (512 B per access, like the
/// paper's dax micro-benchmark): enough concurrent streams to saturate the
/// device bandwidth server; the aggregate rate is its service rate.
double cxl_bandwidth_bps(bool with_flush) {
  auto device = check_ok(cxlsim::DaxDevice::create(64_MiB));
  constexpr std::size_t kChunk = 512;
  constexpr int kIters = 4096;
  simtime::Ns last = 0;
  for (int i = 0; i < kIters; ++i) {
    // All streams offered at t=0: the completion horizon is capacity-bound.
    last = device->timing().reserve_device(0, kChunk, /*is_read=*/false);
  }
  double rate = static_cast<double>(kChunk) * kIters / last * 1e9;
  if (with_flush) {
    // Flushed streaming sustains slightly less (Table 1: 9.5 vs 9.9 GB/s).
    rate *= 9.5 / 9.9;
  }
  return rate;
}

Row network_row(const std::string& name, const fabric::NicProfile& profile) {
  simtime::LogGPModel wire(profile.loggp);
  return {name, wire.zero_load_latency(8),
          profile.loggp.wire_bytes_per_ns * 1e9};
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  (void)args;
  cxlsim::CxlTimingParams params;

  std::vector<Row> rows;
  rows.push_back({"Main memory",
                  100.0,  // Table 1: DDR5 idle latency
                  params.local_mem_bytes_per_ns * 1e9});
  rows.push_back(network_row("TCP over Ethernet", fabric::tcp_ethernet()));
  rows.push_back(network_row("TCP over Mellanox (CX-6 Dx)",
                             fabric::tcp_cx6dx()));
  rows.push_back(network_row("RoCEv2 over Mellanox (CX-6 Dx)",
                             fabric::rocev2_cx6dx()));
  rows.push_back(network_row("RoCEv2 over Mellanox (CX-3)",
                             fabric::rocev2_cx3()));
  rows.push_back(network_row("InfiniBand over Mellanox (CX-6)",
                             fabric::infiniband_cx6()));
  rows.push_back({"CXL memory sharing (cached, no flush)",
                  cxl_latency_ns(false), cxl_bandwidth_bps(false)});
  rows.push_back({"CXL memory sharing (with cache flushing)",
                  cxl_latency_ns(true), cxl_bandwidth_bps(true)});

  std::printf("\n== Table 1: memory access latency and bandwidth over "
              "various interconnects ==\n");
  std::printf("  %-42s %12s %14s\n", "Arch Type", "Latency", "Bandwidth");
  for (const Row& row : rows) {
    std::printf("  %-42s %12s %14s\n", row.name.c_str(),
                format_duration_ns(row.latency_ns).c_str(),
                format_bandwidth(row.bandwidth_bps).c_str());
  }

  // The §2 observations derived from the table.
  const double eth = rows[1].latency_ns;
  const double mlx = rows[2].latency_ns;
  const double cxl_flush = rows[7].latency_ns;
  const double cxl_cached = rows[6].latency_ns;
  std::printf("\n  Observation 1: CXL (flushed) latency is %.1fx-%.1fx lower"
              " than TCP-based interconnects (paper: 7.2x-8.1x)\n",
              eth / cxl_flush, mlx / cxl_flush);
  std::printf("  Observation 1b: CXL bandwidth vs TCP over Ethernet: %.0fx"
              " (paper: ~80x)\n",
              rows[7].bandwidth_bps / rows[1].bandwidth_bps);
  std::printf("  Observation 3: cache flushing increases CXL latency by "
              "%.1fx (paper: 2.8x)\n",
              cxl_flush / cxl_cached);
  return 0;
}
