// Adversarial phase-shifting workload: the self-tuning acceptance gate.
//
// One run pushes three workload phases through the same universe, in
// order, with no reconfiguration between them:
//
// The universe runs 4 KiB ring cells (the small end of the Fig 9 cell
// axis): per-cell costs — header publish, per-cell reap, doorbells —
// dominate the eager path on large messages there, while the rendezvous
// path moves the same bytes as a handful of slab segments. The phases:
//
//   overlap — 4 MiB messages with receiver-side compute before the
//             receives post (a 4 MiB eager message is 1024 cells; a
//             rendezvous message at a grown 512 KiB pipeline quantum is
//             8 RTS descriptors),
//   burst   — 8 KiB messages at high rate (rendezvous RTS/FIN round
//             trips per message lose; the eager path wins),
//   drain   — 256 KiB messages with a shorter compute window (the
//             middle of the switchover: the dispatch-table prior decides).
//
// Each static configuration in the panel is specialized for one phase and
// wrong for another: eager-only loses overlap to per-cell costs,
// rendezvous-everything loses burst, a tiny pipeline quantum fragments
// large messages into per-piece segments (each with its own RTS, fence,
// and flush sweep) and loses overlap. The adaptive run
// (CMPI_TUNE-equivalent, warm-started from the checked-in dispatch table
// when present) must land within 5% of the best static configuration in
// EVERY phase and strictly beat every static configuration on whole-run
// throughput. Both gates are built in: the bench exits non-zero when
// either fails, so CI runs it bare.
//
//   ./bench/phase_shift [--json=BENCH_tune.json] [--iters-scale=N]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "core/cmpi.hpp"
#include "osu/drivers.hpp"

#ifndef CMPI_DISPATCH_TABLE_FILE
#define CMPI_DISPATCH_TABLE_FILE ""
#endif

namespace {

using namespace cmpi;

constexpr int kDataTag = 7;
constexpr int kAckTag = 8;

struct PhaseSpec {
  const char* name;
  std::size_t size;
  int window;
  int iters;
  /// Receiver-side compute (virtual ns) charged BEFORE the receives are
  /// posted each iteration — the overlap window a pipelining sender can
  /// hide its slab writes behind.
  double compute_ns;
};

const std::vector<PhaseSpec>& phases() {
  static const std::vector<PhaseSpec> specs = {
      {"overlap", 4_MiB, 2, 4, 3.0e6},
      {"burst", 8_KiB, 32, 20, 0.0},
      {"drain", 256_KiB, 8, 8, 5.0e5},
  };
  return specs;
}

struct ConfigSpec {
  std::string name;
  std::size_t rendezvous_threshold = 0;  // 0 = default (one cell payload)
  std::size_t rendezvous_quantum = 0;    // 0 = default
  bool adaptive = false;
};

struct RunResult {
  std::vector<double> phase_mbps;  // one per phase
  double whole_mbps = 0;
};

RunResult run_config(const ConfigSpec& config, int iters_scale) {
  osu::SweepParams params;
  params.procs = 4;
  params.cell_payload = 4_KiB;
  params.ring_cells = 8;
  params.rendezvous_threshold = config.rendezvous_threshold;
  params.rendezvous_quantum = config.rendezvous_quantum;
  for (const PhaseSpec& phase : phases()) {
    params.sizes.push_back(phase.size);  // pool sizing only
  }
  if (config.adaptive) {
    params.tune.mode = tune::Tuning::kEnabled;
    if (std::ifstream(CMPI_DISPATCH_TABLE_FILE).good()) {
      params.tune.table_path = CMPI_DISPATCH_TABLE_FILE;
    }
  } else {
    params.tune.mode = tune::Tuning::kDisabled;
  }

  runtime::Universe universe(osu::bench_universe_config(params));
  const int pairs = params.procs / 2;
  std::mutex mutex;
  std::vector<double> elapsed(phases().size(), 0.0);
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    const bool is_sender = ctx.rank() < pairs;
    const int peer = is_sender ? ctx.rank() + pairs : ctx.rank() - pairs;
    for (std::size_t pi = 0; pi < phases().size(); ++pi) {
      const PhaseSpec& phase = phases()[pi];
      const int iters = phase.iters * iters_scale;
      std::vector<std::byte> payload(phase.size, std::byte{0x5A});
      std::vector<std::byte> inbox(phase.size);
      std::byte ack[4];
      ctx.barrier();
      double start = 0;
      for (int it = -1; it < iters; ++it) {  // one untimed warmup iteration
        if (it == 0) {
          ctx.barrier();
          start = ctx.clock().now();
        }
        std::vector<p2p::RequestPtr> reqs;
        reqs.reserve(static_cast<std::size_t>(phase.window));
        if (is_sender) {
          for (int w = 0; w < phase.window; ++w) {
            reqs.push_back(mpi.isend(peer, kDataTag, payload));
          }
          check_ok(mpi.wait_all(reqs));
          check_ok(mpi.recv(peer, kAckTag, ack).status());
        } else {
          if (phase.compute_ns > 0) {
            ctx.clock().advance(phase.compute_ns);  // compute before recv
          }
          for (int w = 0; w < phase.window; ++w) {
            reqs.push_back(mpi.irecv(peer, kDataTag, inbox));
          }
          check_ok(mpi.wait_all(reqs));
          check_ok(mpi.send(peer, kAckTag, ack));
        }
      }
      ctx.barrier();
      if (ctx.rank() == 0) {
        std::lock_guard lock(mutex);
        elapsed[pi] = ctx.clock().now() - start;
      }
    }
  });

  RunResult result;
  double total_bytes = 0;
  double total_ns = 0;
  for (std::size_t pi = 0; pi < phases().size(); ++pi) {
    const PhaseSpec& phase = phases()[pi];
    const double bytes = static_cast<double>(pairs) *
                         (phase.iters * iters_scale) * phase.window *
                         static_cast<double>(phase.size);
    result.phase_mbps.push_back(bytes / elapsed[pi] * 1e3);  // MB/s
    total_bytes += bytes;
    total_ns += elapsed[pi];
  }
  result.whole_mbps = total_bytes / total_ns * 1e3;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const std::string json_path = args.get_string("json", "");
  const int iters_scale =
      static_cast<int>(args.get_int("iters-scale", 1));
  for (const auto& flag : args.unused_flags()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  const std::vector<ConfigSpec> panel = {
      {"adaptive", 0, 0, true},
      {"static-eager-only", ~std::size_t{0}, 0, false},
      {"static-rdvz-all", 1024, 0, false},
      {"static-tiny-quantum", 0, 4_KiB, false},
  };

  std::vector<RunResult> results;
  std::printf("%-22s", "config");
  for (const PhaseSpec& phase : phases()) {
    std::printf(" %12s", phase.name);
  }
  std::printf(" %12s\n", "whole-run");
  for (const ConfigSpec& config : panel) {
    results.push_back(run_config(config, iters_scale));
    const RunResult& r = results.back();
    std::printf("%-22s", config.name.c_str());
    for (const double mbps : r.phase_mbps) {
      std::printf(" %12.1f", mbps);
    }
    std::printf(" %12.1f\n", r.whole_mbps);
  }

  // Gate 1: adaptive within 5% of the best static config in every phase.
  const RunResult& adaptive = results[0];
  bool phase_gate = true;
  for (std::size_t pi = 0; pi < phases().size(); ++pi) {
    double best_static = 0;
    std::size_t best_ci = 1;
    for (std::size_t ci = 1; ci < results.size(); ++ci) {
      if (results[ci].phase_mbps[pi] > best_static) {
        best_static = results[ci].phase_mbps[pi];
        best_ci = ci;
      }
    }
    if (adaptive.phase_mbps[pi] < 0.95 * best_static) {
      std::fprintf(stderr,
                   "GATE FAIL: phase %s — adaptive %.1f MB/s vs %s "
                   "%.1f MB/s (below 95%%)\n",
                   phases()[pi].name, adaptive.phase_mbps[pi],
                   panel[best_ci].name.c_str(), best_static);
      phase_gate = false;
    }
  }
  // Gate 2: adaptive strictly beats every static config whole-run.
  bool whole_gate = true;
  for (std::size_t ci = 1; ci < results.size(); ++ci) {
    if (adaptive.whole_mbps <= results[ci].whole_mbps) {
      std::fprintf(stderr,
                   "GATE FAIL: whole-run — adaptive %.1f MB/s does not "
                   "beat %s %.1f MB/s\n",
                   adaptive.whole_mbps, panel[ci].name.c_str(),
                   results[ci].whole_mbps);
      whole_gate = false;
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 2;
    }
    out << "{\n  \"bench\": \"phase_shift\",\n  \"configs\": {";
    for (std::size_t ci = 0; ci < panel.size(); ++ci) {
      out << (ci == 0 ? "\n" : ",\n") << "    \"" << panel[ci].name
          << "\": {\"phases\": {";
      for (std::size_t pi = 0; pi < phases().size(); ++pi) {
        out << (pi == 0 ? "" : ", ") << "\"" << phases()[pi].name
            << "\": " << results[ci].phase_mbps[pi];
      }
      out << "}, \"whole_run_mbps\": " << results[ci].whole_mbps << "}";
    }
    out << "\n  },\n  \"gates\": {\"per_phase_within_5pct\": "
        << (phase_gate ? "true" : "false")
        << ", \"whole_run_beats_statics\": "
        << (whole_gate ? "true" : "false") << "}\n}\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }

  if (!phase_gate || !whole_gate) {
    return 1;
  }
  std::printf("both gates passed: adaptive within 5%% per phase and ahead "
              "whole-run\n");
  return 0;
}
