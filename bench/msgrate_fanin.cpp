// Message-rate fan-in bench: N senders -> 1 receiver, OSU osu_mbw_mr
// style, at small payloads where per-message protocol cost dominates.
//
// This is the before/after artifact for the doorbell-aggregated progress
// engine (p2p::Endpoint): "legacy scan" runs the pre-doorbell linear
// per-peer ring scan with per-cell publication
// (ProgressEngine::kLegacyScan), "doorbell" runs the aggregated-doorbell
// engine with batched reaping and batched publication. Both rows come
// from one binary so the JSON artifact carries its own ablation.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "common/cli.hpp"
#include "osu/drivers.hpp"
#include "osu/report.hpp"

using namespace cmpi;

namespace {

osu::MsgRateParams params_for(int senders, std::size_t size, int window,
                              int iters, int warmup, bool legacy) {
  osu::MsgRateParams params;
  params.size = size;
  params.senders = senders;
  params.window = window;
  params.iters = iters;
  params.warmup = warmup;
  params.legacy_scan = legacy;
  return params;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const std::size_t size = args.get_size("size", 8);
  const int window = static_cast<int>(args.get_int("window", 64));
  const int iters = static_cast<int>(args.get_int("iters", 10));
  const int warmup = static_cast<int>(args.get_int("warmup", 2));
  const bool csv = args.get_bool("csv");
  const std::string json_path = args.get_string("json", "BENCH_msgrate.json");
  for (const auto& flag : args.unused_flags()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  osu::FigureTable table("Message rate: N-sender fan-in, " +
                             std::to_string(size) + " B payloads",
                         "Senders", "msg/s");
  for (const int senders : {2, 8, 16}) {
    table.set("doorbell", static_cast<std::size_t>(senders),
              osu::cxl_msgrate_fanin(
                  params_for(senders, size, window, iters, warmup, false)));
    table.set("legacy scan", static_cast<std::size_t>(senders),
              osu::cxl_msgrate_fanin(
                  params_for(senders, size, window, iters, warmup, true)));
  }
  table.print(std::cout);
  if (csv) {
    table.print_csv(std::cout);
  }
  const double speedup = osu::max_ratio(table, "doorbell", "legacy scan");
  std::printf("\n  doorbell-aggregated progress: up to %.1fx the legacy"
              " scan's message rate\n", speedup);
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 2;
    }
    table.print_json(out, {
        {"size", std::to_string(size)},
        {"window", std::to_string(window)},
        {"iters", std::to_string(iters)},
        {"warmup", std::to_string(warmup)},
    });
    std::printf("  wrote %s\n", json_path.c_str());
  }
  return 0;
}
