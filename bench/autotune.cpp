// Offline autotuner (tune subsystem): sweeps the Fig 9 axes — cell size x
// rendezvous threshold x procs, plus a pipeline-quantum/inflight
// mini-sweep — and writes the winning configuration per message-size
// class to bench/baselines/dispatch_table.json. The runtime controller
// loads that table (CMPI_TUNE_TABLE) as its warm-start prior.
//
//   ./bench/autotune                  full sweep, print winners
//   CMPI_UPDATE_BASELINE=1 ./bench/autotune   ...and rewrite the baseline
//   ./bench/autotune --out=PATH       write the table to PATH instead
//   ./bench/autotune --check          drift gate (CI): re-sweep at reduced
//                                     resolution and fail when a checked-in
//                                     winner measures below 95% of the new
//                                     best for its class — catching a stale
//                                     table without flaking on sub-percent
//                                     virtual-time jitter.
//
// All measurements are virtual-time (deterministic for a fixed build), so
// the table never drifts between machines — only between code versions,
// which is exactly what the CI gate is for.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "osu/drivers.hpp"
#include "tune/dispatch_table.hpp"

#ifndef CMPI_DISPATCH_TABLE_FILE
#error "CMPI_DISPATCH_TABLE_FILE must point at bench/baselines/dispatch_table.json"
#endif

namespace {

using cmpi::tune::DispatchEntry;
using cmpi::tune::DispatchTable;

struct Axes {
  std::vector<std::size_t> cells;
  std::vector<std::size_t> thresholds;  // SIZE_MAX = rendezvous off
  std::vector<std::size_t> quanta;
  std::vector<std::size_t> inflights;
  /// Workload axis, not a knob: each candidate is scored by its mean
  /// throughput across these process counts so the table does not
  /// overfit one communicator size (the Fig 9 procs axis).
  std::vector<int> procs;
};

Axes full_axes() {
  using namespace cmpi;
  Axes axes;
  axes.cells = {4_KiB, 16_KiB, 64_KiB};
  axes.thresholds = {16_KiB, 64_KiB, 256_KiB, ~std::size_t{0}};
  axes.quanta = {64_KiB, 128_KiB, 256_KiB};
  axes.inflights = {4, 8};
  axes.procs = {2, 4};
  return axes;
}

/// --check resolution: the extreme cells, eager-vs-default-rendezvous,
/// and the stock pipeline knobs. Enough to notice a code change that
/// moved the landscape; cheap enough to run on every CI push.
Axes reduced_axes() {
  using namespace cmpi;
  Axes axes;
  axes.cells = {4_KiB, 64_KiB};
  axes.thresholds = {64_KiB, ~std::size_t{0}};
  axes.quanta = {128_KiB};
  axes.inflights = {8};
  // Same procs axis as the full sweep: the drift gate compares scores,
  // and a winner picked on the {2,4} mean would flag as stale when
  // re-measured at a single communicator size.
  axes.procs = {2, 4};
  return axes;
}

/// Size-class upper bounds (half-open, ascending; the last catches all).
std::vector<std::size_t> size_classes() {
  using namespace cmpi;
  return {16_KiB, 64_KiB, 256_KiB, 1_MiB, 4_MiB};
}

/// Mean throughput of one static configuration across the procs axis.
double measure_mbps(std::size_t probe_size, const std::vector<int>& procs,
                    int iters, const DispatchEntry& config) {
  double sum = 0;
  for (const int p : procs) {
    cmpi::osu::SweepParams params;
    params.sizes = {probe_size};
    params.procs = p;
    params.iters = iters;
    params.warmup = 1;
    params.cell_payload = config.cell_payload;
    params.rendezvous_threshold = config.rendezvous_threshold;
    params.rendezvous_quantum = config.pipeline_quantum;
    params.rendezvous_inflight = config.inflight_depth;
    // The sweep measures STATIC configurations; a tuner adapting
    // mid-probe would fold the controller into its own training data.
    params.tune.mode = cmpi::tune::Tuning::kDisabled;
    sum += cmpi::osu::cxl_twosided_bw_mbps(params)[0];
  }
  return sum / static_cast<double>(procs.size());
}

/// Best configuration for one (size class, cell payload): staged sweep —
/// threshold first (stock pipeline knobs), then quantum x inflight around
/// the winner. Cuts the grid from |t||q||i| runs to |t| + |q||i|. The
/// cell is fixed per row: the runtime controller can only consult rows
/// matching the geometry its universe was built with.
DispatchEntry tune_class(std::size_t max_bytes, std::size_t cell,
                         const Axes& axes, int iters) {
  DispatchEntry best;
  best.max_bytes = max_bytes;
  for (const std::size_t threshold : axes.thresholds) {
    DispatchEntry candidate;
    candidate.max_bytes = max_bytes;
    candidate.cell_payload = cell;
    candidate.rendezvous_threshold = threshold;
    candidate.pipeline_quantum = axes.quanta.front();
    candidate.inflight_depth = axes.inflights.front();
    candidate.mbps = measure_mbps(max_bytes, axes.procs, iters, candidate);
    if (candidate.mbps > best.mbps) {
      best = candidate;
    }
  }
  const bool rendezvous_in_play = max_bytes > best.rendezvous_threshold;
  if (rendezvous_in_play) {
    for (const std::size_t quantum : axes.quanta) {
      for (const std::size_t inflight : axes.inflights) {
        if (quantum == best.pipeline_quantum &&
            inflight == best.inflight_depth) {
          continue;  // already measured in the first stage
        }
        DispatchEntry candidate = best;
        candidate.pipeline_quantum = quantum;
        candidate.inflight_depth = inflight;
        candidate.mbps = measure_mbps(max_bytes, axes.procs, iters, candidate);
        if (candidate.mbps > best.mbps) {
          best = candidate;
        }
      }
    }
  }
  return best;
}

std::string human_size(std::size_t bytes) {
  if (bytes == ~std::size_t{0}) {
    return "off";
  }
  if (bytes >= (std::size_t{1} << 20) && bytes % (std::size_t{1} << 20) == 0) {
    return std::to_string(bytes >> 20) + "M";
  }
  if (bytes >= 1024 && bytes % 1024 == 0) {
    return std::to_string(bytes >> 10) + "K";
  }
  return std::to_string(bytes);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = cmpi::check_ok(cmpi::CliArgs::parse(argc, argv));
  const bool check = args.get_bool("check");
  const int iters = static_cast<int>(args.get_int("iters", 3));
  std::string out_path = args.get_string("out", "");
  for (const auto& flag : args.unused_flags()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  const Axes axes = check ? reduced_axes() : full_axes();
  std::vector<DispatchEntry> winners;
  std::printf("%-8s %-6s %-10s %-8s %-9s %10s\n", "class", "cell",
              "threshold", "quantum", "inflight", "MB/s");
  for (const std::size_t cell : axes.cells) {
    for (const std::size_t max_bytes : size_classes()) {
      const DispatchEntry best = tune_class(max_bytes, cell, axes, iters);
      std::printf("%-8s %-6s %-10s %-8s %-9zu %10.1f\n",
                  human_size(max_bytes).c_str(),
                  human_size(best.cell_payload).c_str(),
                  human_size(best.rendezvous_threshold).c_str(),
                  human_size(best.pipeline_quantum).c_str(),
                  best.inflight_depth, best.mbps);
      winners.push_back(best);
    }
  }

  if (check) {
    // Drift gate: every checked-in winner must still measure within 5% of
    // the best this build finds for its (class, cell) row.
    const cmpi::Result<DispatchTable> loaded =
        DispatchTable::load(CMPI_DISPATCH_TABLE_FILE);
    if (!loaded.is_ok()) {
      std::fprintf(stderr, "FAIL: cannot load %s: %s\n",
                   CMPI_DISPATCH_TABLE_FILE,
                   loaded.status().message().c_str());
      return 1;
    }
    const DispatchTable& table = loaded.value();
    bool drifted = false;
    for (const DispatchEntry& fresh : winners) {
      const DispatchEntry* checked_in =
          table.lookup(fresh.max_bytes, fresh.cell_payload);
      if (checked_in == nullptr || checked_in->max_bytes != fresh.max_bytes ||
          checked_in->cell_payload != fresh.cell_payload) {
        std::fprintf(stderr, "FAIL: class %s @ cell %s missing from %s\n",
                     human_size(fresh.max_bytes).c_str(),
                     human_size(fresh.cell_payload).c_str(),
                     CMPI_DISPATCH_TABLE_FILE);
        drifted = true;
        continue;
      }
      const double measured =
          measure_mbps(fresh.max_bytes, axes.procs, iters, *checked_in);
      if (measured < 0.95 * fresh.mbps) {
        std::fprintf(stderr,
                     "FAIL: class %s @ cell %s checked-in policy measures "
                     "%.1f MB/s, below 95%% of this build's best %.1f MB/s — "
                     "re-baseline with CMPI_UPDATE_BASELINE=1 ./bench/autotune\n",
                     human_size(fresh.max_bytes).c_str(),
                     human_size(fresh.cell_payload).c_str(), measured,
                     fresh.mbps);
        drifted = true;
      }
    }
    if (drifted) {
      return 1;
    }
    std::printf("dispatch table up to date (every class within 5%% of the "
                "reduced-sweep best)\n");
    return 0;
  }

  const char* update = std::getenv("CMPI_UPDATE_BASELINE");
  if (out_path.empty() && update != nullptr && update[0] != '\0' &&
      std::string(update) != "0") {
    out_path = CMPI_DISPATCH_TABLE_FILE;
  }
  if (!out_path.empty()) {
    std::string procs_list;
    for (const int p : axes.procs) {
      procs_list += (procs_list.empty() ? "" : ",") + std::to_string(p);
    }
    DispatchTable table(winners);
    table.set_provenance({
        {"generator", "bench/autotune"},
        {"axes",
         "per cell: rendezvous_threshold, then quantum x inflight; scored "
         "across procs"},
        {"resolution", check ? "reduced" : "full"},
        {"procs", procs_list},
        {"iters", std::to_string(iters)},
    });
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
      return 2;
    }
    table.save(out);
    std::printf("wrote %s\n", out_path.c_str());
  }
  return 0;
}
