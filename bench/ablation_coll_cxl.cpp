// Ablation: collectives layered on point-to-point (§3.6's default) vs
// collectives mapped directly onto CXL shared memory (the Ahn et al.
// direction the paper cites).
//
// Allgather over p2p runs n-1 ring rounds (or log n Bruck rounds) of
// queue-protocol messages; the CXL-direct version deposits one block per
// rank into a shared window and reads peers straight from the pool.
// Expectation: direct wins for small/medium payloads (fewer protocol
// rounds), while the algorithmic versions pipeline better as payloads
// grow and CPU copies dominate.
#include <cstdio>
#include <iostream>

#include "coll/collectives.hpp"
#include "coll/cxl_collectives.hpp"
#include "common/cli.hpp"
#include "core/cmpi.hpp"
#include "osu/report.hpp"
#include "p2p/endpoint.hpp"

namespace {

using namespace cmpi;

enum class Algo { kRing, kBruck, kCxlDirect };

double allgather_us(Algo algo, int nranks, std::size_t bytes_per_rank,
                    int iters) {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = static_cast<unsigned>(nranks) / 2;
  cfg.pool_size = 512_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 127;
  cfg.cell_payload = 64_KiB;
  runtime::Universe universe(cfg);
  double result = 0;
  universe.run([&](runtime::RankCtx& ctx) {
    p2p::Endpoint ep = p2p::Endpoint::create(ctx);
    coll::CxlCollectives cxl(ctx, "bench", bytes_per_rank);
    std::vector<std::byte> mine(bytes_per_rank,
                                static_cast<std::byte>(ctx.rank()));
    std::vector<std::byte> all(bytes_per_rank *
                               static_cast<std::size_t>(nranks));
    ctx.barrier();
    const double start = ctx.clock().now();
    for (int i = 0; i < iters; ++i) {
      switch (algo) {
        case Algo::kRing:
          coll::allgather(ep, mine, all);
          break;
        case Algo::kBruck:
          coll::allgather_bruck(ep, mine, all);
          break;
        case Algo::kCxlDirect:
          cxl.allgather(mine, all);
          break;
      }
    }
    ctx.barrier();
    if (ctx.rank() == 0) {
      result = (ctx.clock().now() - start) / iters / 1e3;
    }
    cxl.free();
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const int nranks = static_cast<int>(args.get_int("procs", 8));
  const int iters = static_cast<int>(args.get_int("iters", 5));
  const bool csv = args.get_bool("csv");

  osu::FigureTable table(
      "Ablation: allgather over p2p vs directly over CXL SHM (" +
          std::to_string(nranks) + " procs)",
      "Size", "us/allgather");
  for (std::size_t size = 8; size <= 256_KiB; size *= 8) {
    table.set("ring (p2p)", size, allgather_us(Algo::kRing, nranks, size,
                                               iters));
    table.set("Bruck (p2p)", size,
              allgather_us(Algo::kBruck, nranks, size, iters));
    table.set("CXL-direct", size,
              allgather_us(Algo::kCxlDirect, nranks, size, iters));
  }
  table.print(std::cout);
  if (csv) {
    table.print_csv(std::cout);
  }
  std::printf("\n  the direct mapping is competitive at small sizes (one"
              " deposit + reads vs n-1 protocol rounds) but its serialized"
              " per-peer reads and two fence barriers lose to the pipelined"
              " p2p algorithms as payloads grow — the kind of tradeoff the"
              " paper's §3.6 defers to future work\n");
  return 0;
}
