// Multi-tenant churn/chaos harness for runtime::PoolService.
//
// Two phases, one JSON artifact (BENCH_churn.json):
//
//   * Fairness — a 10%-share "light" tenant runs a fixed transfer
//     schedule twice: solo (full device to itself) and against a
//     90%-share saturator streaming ~12x its volume. The WFQ guarantee in
//     the device timing model must keep the light tenant's attainment
//     (observed bandwidth vs its promised 10% slice) at or above 80%.
//
//   * Churn + chaos — three tenants cycle join -> traffic epoch -> leave
//     -> join_for(backoff) on their own host threads while a fault plan
//     seeded from CMPI_FAULT_SEED kills one first-wave sender rank
//     mid-stream. Survivor tenants must complete every message, the
//     victim tenant must convict + scavenge inside its own region, and
//     every tenant's blast-radius counters must stay zero (no access ever
//     left its fault domain).
//
// The process exits non-zero when either the fairness floor or the
// isolation invariants fail, so CI can gate on the binary directly.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "core/cmpi.hpp"
#include "obs/obs.hpp"
#include "runtime/pool_service.hpp"
#include "runtime/universe.hpp"

using namespace cmpi;
using namespace std::chrono_literals;

namespace {

// --- Phase 1: WFQ fairness under a saturating neighbour ---------------

struct FairnessReport {
  double solo_ns = 0.0;        ///< light tenant's solo completion (vtime)
  double contended_ns = 0.0;   ///< same schedule against the saturator
  double share = 0.1;
  double attainment = 0.0;     ///< observed bandwidth / promised share
};

runtime::TenantConfig fairness_tenant(double share) {
  runtime::TenantConfig tenant;
  tenant.nodes = 2;
  tenant.ranks_per_node = 1;
  tenant.region_size = 12_MiB;
  tenant.bandwidth_share = share;
  return tenant;
}

/// rank 1 streams `msgs` transfers of `bytes` to rank 0; returns the
/// receiver's virtual clock when the last one landed.
double run_stream(runtime::Universe& universe, int msgs, std::size_t bytes) {
  std::atomic<double> done_ns{0.0};
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    std::vector<std::byte> buf(bytes, std::byte{0x2c});
    if (ctx.rank() == 1) {
      for (int m = 0; m < msgs; ++m) {
        check_ok(mpi.send(0, m, buf));
      }
    } else {
      for (int m = 0; m < msgs; ++m) {
        check_ok(mpi.recv(1, m, buf).status());
      }
      done_ns.store(ctx.clock().now());
    }
    ctx.barrier();
  });
  return done_ns.load();
}

FairnessReport measure_fairness(int light_msgs, int sat_msgs,
                                std::size_t msg_bytes) {
  FairnessReport report;

  {
    // Solo baseline: the light tenant alone on a fresh device measures
    // the full-rate completion of its schedule.
    runtime::PoolServiceConfig cfg;
    cfg.pool_size = 64_MiB;
    runtime::PoolService service(cfg);
    runtime::TenantSession light =
        check_ok(service.join(fairness_tenant(report.share)));
    report.solo_ns = run_stream(light.universe(), light_msgs, msg_bytes);
  }
  {
    // Contended: a 90%-share saturator streams concurrently (in virtual
    // time) with the same light schedule on the same device.
    runtime::PoolServiceConfig cfg;
    cfg.pool_size = 64_MiB;
    runtime::PoolService service(cfg);
    runtime::TenantSession saturator =
        check_ok(service.join(fairness_tenant(0.9)));
    runtime::TenantSession light =
        check_ok(service.join(fairness_tenant(report.share)));
    std::thread sat([&] {
      (void)run_stream(saturator.universe(), sat_msgs, msg_bytes);
    });
    report.contended_ns = run_stream(light.universe(), light_msgs, msg_bytes);
    sat.join();
  }

  // Bandwidth ratio via completion times: promised slice is
  // share * full rate, so attainment = solo / (share * contended).
  if (report.contended_ns > 0.0) {
    report.attainment =
        report.solo_ns / (report.share * report.contended_ns);
  }
  return report;
}

// --- Phase 2: churn with a seeded mid-stream crash --------------------

constexpr int kTenants = 3;
constexpr int kRanksPerTenant = 2;
constexpr std::size_t kChurnMsgBytes = 2500;  // 3 chunks at 1 KiB cells

struct TenantLedger {
  std::uint64_t msgs_expected = 0;
  std::uint64_t msgs_completed = 0;
  std::uint64_t epochs_completed = 0;
  std::uint64_t crashes_observed = 0;
  std::uint64_t scavenges = 0;
  std::uint64_t blast_writes = 0;
  std::uint64_t blast_reads = 0;
  std::uint64_t join_failures = 0;
};

runtime::TenantConfig churn_tenant() {
  runtime::TenantConfig tenant;
  tenant.nodes = kRanksPerTenant;
  tenant.ranks_per_node = 1;
  tenant.region_size = 4_MiB;
  tenant.cell_payload = 1_KiB;
  // Keep 2.5 KiB messages on the chunked eager path so the scripted
  // p2p-chunk-staged kill point is reachable.
  tenant.rendezvous_threshold = 64_KiB;
  tenant.failure_lease = 50ms;
  return tenant;
}

/// One traffic epoch inside a joined tenant. Returns normally whether or
/// not the scripted crash hit this tenant; the ledger records what
/// happened.
void run_epoch(runtime::TenantSession& session, int msgs,
               TenantLedger& ledger) {
  std::atomic<std::uint64_t> completed{0};
  std::atomic<std::uint64_t> crashes{0};
  session.universe().run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    ctx.barrier();
    std::vector<std::byte> buf(kChurnMsgBytes, std::byte{0x7e});
    if (ctx.rank() == 1) {
      for (int m = 0; m < msgs; ++m) {
        // The scripted victim dies inside one of these sends
        // (RankCrashed unwinds the rank thread; the universe harness
        // catches it and convicts the rank).
        if (!mpi.send_for(0, m, buf, 5000ms).is_ok()) {
          return;
        }
      }
    } else {
      for (int m = 0; m < msgs; ++m) {
        const auto r = mpi.recv_for(1, m, buf, 5000ms);
        if (!r.is_ok()) {
          if (r.status().code() == ErrorCode::kPeerFailed) {
            ++crashes;
            // Region-scoped recovery: reclaim the corpse's cells and
            // slabs from THIS tenant's region.
            (void)mpi.scavenge(1);
          }
          return;
        }
        ++completed;
      }
    }
  });
  ledger.msgs_expected += static_cast<std::uint64_t>(msgs);
  ledger.msgs_completed += completed.load();
  ledger.crashes_observed += crashes.load();
  if (completed.load() == static_cast<std::uint64_t>(msgs)) {
    ++ledger.epochs_completed;
  }
  const runtime::Universe::DomainStats blast =
      session.universe().domain_stats();
  ledger.blast_writes += blast.writes_outside;
  ledger.blast_reads += blast.reads_outside;
  ledger.scavenges += session.universe().recovery_stats().scavenges;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const char* seed_env = std::getenv("CMPI_FAULT_SEED");
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int(
      "seed", seed_env != nullptr ? std::atoll(seed_env) : 1));
  const int epochs = static_cast<int>(args.get_int("epochs", 3));
  const int msgs = static_cast<int>(args.get_int("msgs", 16));
  const int light_msgs = static_cast<int>(args.get_int("light-msgs", 8));
  const int sat_msgs = static_cast<int>(args.get_int("sat-msgs", 96));
  const std::size_t msg_bytes = args.get_size("msg-size", 256_KiB);
  const std::string json_path = args.get_string("json", "BENCH_churn.json");
  for (const auto& flag : args.unused_flags()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  std::printf("churn_tenants: seed %llu, %d tenants x %d epochs x %d msgs\n",
              static_cast<unsigned long long>(seed), kTenants, epochs, msgs);

  // Phase 1: fairness.
  const FairnessReport fair =
      measure_fairness(light_msgs, sat_msgs, msg_bytes);
  std::printf(
      "  fairness: solo %.0f ns, contended %.0f ns -> attainment %.1f%% of"
      " the 10%% share\n",
      fair.solo_ns, fair.contended_ns, 100.0 * fair.attainment);

  // Phase 2: churn + seeded chaos. The victim is always a first-wave
  // SENDER (local rank 1 -> global 2 * t + 1): receivers never stage
  // chunks, so a receiver-rank target would make the plan unreachable.
  const int victim_tenant = static_cast<int>(seed % kTenants);
  const int victim_rank = kRanksPerTenant * victim_tenant + 1;
  const std::uint64_t occurrence = 2 + seed % 40;  // within epoch 1's 48
  runtime::PoolServiceConfig cfg;
  cfg.pool_size = 64_MiB;
  cfg.max_tenants = kTenants;
  cfg.fault_plan.crash_at_sync.push_back(
      {.rank = victim_rank,
       .point = "p2p-chunk-staged",
       .occurrence = occurrence});
  runtime::PoolService service(cfg);
  std::printf("  chaos: global rank %d (tenant slot %d) dies at staged"
              " chunk %llu\n",
              victim_rank, victim_tenant,
              static_cast<unsigned long long>(occurrence));

  // Wave 1 joins on the main thread so global rank bases are exactly
  // 0/2/4 and the seeded plan targets a live rank.
  std::vector<runtime::TenantSession> wave;
  wave.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    wave.push_back(check_ok(service.join(churn_tenant())));
  }

  std::vector<TenantLedger> ledgers(kTenants);
  std::vector<std::thread> churners;
  churners.reserve(kTenants);
  for (int t = 0; t < kTenants; ++t) {
    churners.emplace_back([&, t] {
      TenantLedger& ledger = ledgers[static_cast<std::size_t>(t)];
      runtime::TenantSession session =
          std::move(wave[static_cast<std::size_t>(t)]);
      for (int e = 0; e < epochs; ++e) {
        if (e > 0) {
          // Churn: give the slot back, then re-admit through the backoff
          // loop while the other tenants race for the same capacity.
          session.leave();
          auto readmit = service.join_for(churn_tenant(), 10000ms);
          if (!readmit.is_ok()) {
            ++ledger.join_failures;
            return;
          }
          session = std::move(readmit.value());
        }
        run_epoch(session, msgs, ledger);
      }
    });
  }
  for (std::thread& churner : churners) {
    churner.join();
  }

  // Verdicts.
  const bool fairness_ok = fair.attainment >= 0.8;
  bool isolation_ok = true;
  std::uint64_t total_crashes = 0;
  for (int t = 0; t < kTenants; ++t) {
    const TenantLedger& ledger = ledgers[static_cast<std::size_t>(t)];
    total_crashes += ledger.crashes_observed;
    if (ledger.blast_writes != 0 || ledger.blast_reads != 0) {
      isolation_ok = false;  // an access escaped the tenant's region
    }
    if (ledger.join_failures != 0) {
      isolation_ok = false;
    }
    if (t == victim_tenant) {
      // The victim must have seen the crash, scavenged, and completed
      // every epoch after its respawn.
      if (ledger.crashes_observed != 1 || ledger.scavenges < 1 ||
          ledger.epochs_completed !=
              static_cast<std::uint64_t>(epochs) - 1) {
        isolation_ok = false;
      }
    } else if (ledger.msgs_completed != ledger.msgs_expected) {
      isolation_ok = false;  // a survivor lost traffic to the blast
    }
    std::printf(
        "  tenant slot %d%s: %llu/%llu msgs, %llu/%d epochs, crashes %llu,"
        " scavenges %llu, blast %llu/%llu\n",
        t, t == victim_tenant ? " (victim)" : "",
        static_cast<unsigned long long>(ledger.msgs_completed),
        static_cast<unsigned long long>(ledger.msgs_expected),
        static_cast<unsigned long long>(ledger.epochs_completed), epochs,
        static_cast<unsigned long long>(ledger.crashes_observed),
        static_cast<unsigned long long>(ledger.scavenges),
        static_cast<unsigned long long>(ledger.blast_writes),
        static_cast<unsigned long long>(ledger.blast_reads));
  }
  if (total_crashes != 1) {
    isolation_ok = false;  // the scripted crash fired 0 or 2+ times
  }
  const runtime::AdmissionStats adm = service.admission_stats();

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s for writing\n", json_path.c_str());
      return 2;
    }
    out << "{\n"
        << "  \"bench\": \"churn_tenants\",\n"
        << "  \"seed\": " << seed << ",\n"
        << "  \"fairness\": {\n"
        << "    \"share\": " << fair.share << ",\n"
        << "    \"solo_ns\": " << fair.solo_ns << ",\n"
        << "    \"contended_ns\": " << fair.contended_ns << ",\n"
        << "    \"attainment\": " << fair.attainment << ",\n"
        << "    \"floor\": 0.8,\n"
        << "    \"ok\": " << (fairness_ok ? "true" : "false") << "\n"
        << "  },\n"
        << "  \"chaos\": {\n"
        << "    \"victim_rank\": " << victim_rank << ",\n"
        << "    \"victim_tenant_slot\": " << victim_tenant << ",\n"
        << "    \"kill_occurrence\": " << occurrence << ",\n"
        << "    \"tenants\": [\n";
    for (int t = 0; t < kTenants; ++t) {
      const TenantLedger& ledger = ledgers[static_cast<std::size_t>(t)];
      out << "      {\"slot\": " << t
          << ", \"victim\": " << (t == victim_tenant ? "true" : "false")
          << ", \"msgs_expected\": " << ledger.msgs_expected
          << ", \"msgs_completed\": " << ledger.msgs_completed
          << ", \"epochs_completed\": " << ledger.epochs_completed
          << ", \"crashes_observed\": " << ledger.crashes_observed
          << ", \"scavenges\": " << ledger.scavenges
          << ", \"blast_writes_outside\": " << ledger.blast_writes
          << ", \"blast_reads_outside\": " << ledger.blast_reads
          << ", \"join_failures\": " << ledger.join_failures << "}"
          << (t + 1 < kTenants ? "," : "") << "\n";
    }
    out << "    ],\n"
        << "    \"isolation_ok\": " << (isolation_ok ? "true" : "false")
        << "\n  },\n"
        << "  \"admission\": {\"admissions\": " << adm.admissions
        << ", \"rejections\": " << adm.rejections
        << ", \"retries\": " << adm.retries << ", \"leaves\": " << adm.leaves
        << "}\n"
        << "}\n";
    std::printf("  wrote %s\n", json_path.c_str());
  }

  if (!fairness_ok) {
    std::fprintf(stderr,
                 "FAIL: light tenant attained %.1f%% of its share"
                 " (floor 80%%)\n",
                 100.0 * fair.attainment);
  }
  if (!isolation_ok) {
    std::fprintf(stderr, "FAIL: tenant isolation violated (see ledger)\n");
  }
  return fairness_ok && isolation_ok ? 0 : 1;
}
