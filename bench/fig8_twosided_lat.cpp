// Figure 8: latency of two-sided MPI communication (ping-pong).
//
// Paper shape targets: CXL SHM ~12 us for small messages, rising linearly
// once messages exceed the 64 KiB cell (chunking); TCP/Ethernet ~160 us;
// TCP/CX-6 Dx ~55 us small-message, linear beyond 256 KiB; CXL up to
// ~13.7x lower than Ethernet and ~9.6x lower than CX-6 Dx below 64 KiB.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace cmpi;
  const bench::FigureOptions opts = bench::parse_options(argc, argv);
  osu::FigureTable table(
      "Figure 8: latency of two-sided MPI communication", "Size", "us");
  bench::run_standard_sweep(opts, table, osu::cxl_twosided_latency_us,
                            osu::net_twosided_latency_us);
  bench::finish(table, opts);
  bench::print_headline_ratios(table, opts, /*higher_is_better=*/false);
  return 0;
}
