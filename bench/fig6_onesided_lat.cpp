// Figure 6: latency of one-sided MPI communication (MPI_Put + PSCW epoch
// per operation).
//
// Paper shape targets: CXL SHM ~12 us flat from 1 B to 16 KiB, then
// linear growth; TCP baselines hover at ~620-630 us (emulated RMA serviced
// by the target's progress engine); TCP/CX-6 Dx wins beyond ~256 KiB; CXL
// up to ~49.4x lower latency than TCP/Ethernet and ~48.3x than CX-6 Dx.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace cmpi;
  const bench::FigureOptions opts = bench::parse_options(argc, argv);
  osu::FigureTable table(
      "Figure 6: latency of one-sided MPI communication", "Size", "us");
  bench::run_standard_sweep(opts, table, osu::cxl_onesided_latency_us,
                            osu::net_onesided_latency_us);
  bench::finish(table, opts);
  bench::print_headline_ratios(table, opts, /*higher_is_better=*/false);
  return 0;
}
