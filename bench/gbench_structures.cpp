// Wall-clock microbenchmarks (google-benchmark) of the data structures on
// the cMPI hot paths: the multi-level hash, the SPSC ring's functional
// operations, the per-node cache simulator, and the slotted bandwidth
// server. These measure real host CPU cost (the simulator's own speed),
// complementing the virtual-time figure benches.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "arena/multilevel_hash.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "cxlsim/accessor.hpp"
#include "queue/spsc_ring.hpp"
#include "simtime/busy_resource.hpp"

namespace {

using namespace cmpi;

void BM_HashString(benchmark::State& state) {
  const std::string key = "cmpi_win_osu_bw_window_object";
  for (auto _ : state) {
    benchmark::DoNotOptimize(hash_string(key, 7));
  }
}
BENCHMARK(BM_HashString);

void BM_MultilevelProbe(benchmark::State& state) {
  const auto index = check_ok(arena::MultilevelHash::create(10, 199999));
  const std::string key = "rma_window_object_42";
  for (auto _ : state) {
    for (std::size_t l = 0; l < index.levels(); ++l) {
      benchmark::DoNotOptimize(index.slot_of(key, l));
    }
  }
}
BENCHMARK(BM_MultilevelProbe);

void BM_RngNext(benchmark::State& state) {
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next());
  }
}
BENCHMARK(BM_RngNext);

void BM_BusyResourceReserve(benchmark::State& state) {
  simtime::BusyResource device(9.9);
  simtime::Ns t = 0;
  for (auto _ : state) {
    t = device.reserve(t, 4096);
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_BusyResourceReserve);

void BM_CacheSimReadHit(benchmark::State& state) {
  auto device = check_ok(cxlsim::DaxDevice::create(16_MiB));
  cxlsim::CacheSim cache(*device);
  std::byte buf[64];
  cache.read(4096, buf);  // warm the line
  for (auto _ : state) {
    cache.read(4096, buf);
  }
}
BENCHMARK(BM_CacheSimReadHit);

void BM_CacheSimWriteFlush(benchmark::State& state) {
  auto device = check_ok(cxlsim::DaxDevice::create(16_MiB));
  cxlsim::CacheSim cache(*device);
  const std::vector<std::byte> data(
      static_cast<std::size_t>(state.range(0)), std::byte{1});
  for (auto _ : state) {
    cache.write(4096, data);
    cache.clflush(4096, data.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CacheSimWriteFlush)->Arg(64)->Arg(4096)->Arg(65536);

void BM_SpscRingRoundTrip(benchmark::State& state) {
  auto device = check_ok(cxlsim::DaxDevice::create(16_MiB));
  cxlsim::CacheSim cache_a(*device);
  cxlsim::CacheSim cache_b(*device);
  simtime::VClock clock_a;
  simtime::VClock clock_b;
  cxlsim::Accessor producer_acc(*device, cache_a, clock_a);
  cxlsim::Accessor consumer_acc(*device, cache_b, clock_b);
  queue::SpscRing::format(producer_acc, 0, 8,
                          static_cast<std::size_t>(state.range(0)));
  auto producer = check_ok(queue::SpscRing::attach(producer_acc, 0));
  auto consumer = check_ok(queue::SpscRing::attach(consumer_acc, 0));
  const std::vector<std::byte> payload(
      static_cast<std::size_t>(state.range(0)), std::byte{1});
  std::vector<std::byte> out(payload.size());
  queue::CellHeader header{};
  header.total_bytes = payload.size();
  header.chunk_bytes = payload.size();
  header.flags = queue::kLastChunk;
  queue::CellHeader got{};
  for (auto _ : state) {
    producer.try_enqueue(producer_acc, header, payload);
    consumer.try_dequeue(consumer_acc, got, out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SpscRingRoundTrip)->Arg(64)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
