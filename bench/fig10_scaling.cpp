// Figure 10: strong scaling with CG (NPB class D) and miniAMR over the
// SimGrid-style event simulator (§4.4), eight MPI processes per node,
// interconnect parameters from the Table 1 / §4.2 measurements.
//
// Paper shape targets:
//   CG      — CXL SHM communication time ~25.3% lower than TCP/CX-6 Dx
//             and ~37.6% lower than TCP/Ethernet; communication <15% of
//             runtime, so total differences stay small; gap vs CX-6 Dx
//             narrows as bandwidth matters more at scale.
//   miniAMR — communication >62% of runtime and growing with node count
//             (computation steady); CXL total ~4%/4.7% faster than
//             CX-6 Dx / Ethernet; Ethernet competitive at small scale but
//             losing beyond 8 nodes on bandwidth.
#include <cstdio>

#include "common/cli.hpp"
#include "figure_common.hpp"
#include "simnet/apps.hpp"

int main(int argc, char** argv) {
  using namespace cmpi;
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const auto nodes_list =
      bench::parse_proc_list(args.get_string("nodes", "2,4,8,16,32"));
  const int cg_outer = static_cast<int>(args.get_int("cg-outer", 3));
  const int amr_steps = static_cast<int>(args.get_int("amr-steps", 50));
  const bool csv = args.get_bool("csv");
  for (const auto& flag : args.unused_flags()) {
    std::fprintf(stderr, "unknown flag --%s\n", flag.c_str());
    return 2;
  }

  osu::FigureTable cg_total("Figure 10a: CG class D strong scaling (total)",
                            "Nodes", "ms");
  osu::FigureTable cg_comm("Figure 10a': CG communication time", "Nodes",
                           "ms");
  osu::FigureTable amr_total("Figure 10b: miniAMR strong scaling (total)",
                             "Nodes", "ms");
  osu::FigureTable amr_comm("Figure 10b': miniAMR communication time",
                            "Nodes", "ms");

  for (const auto& profile :
       {simnet::cxl_shm_profile(), simnet::tcp_cx6dx_profile(),
        simnet::tcp_ethernet_profile()}) {
    for (const int nodes : nodes_list) {
      simnet::ClusterConfig cluster;
      cluster.nodes = nodes;
      cluster.transport = profile;

      simnet::CgParams cg;
      cg.outer_iters = cg_outer;
      const simnet::AppResult cg_result = simnet::run_cg(cluster, cg);
      cg_total.set(profile.name, static_cast<std::size_t>(nodes),
                   cg_result.total_time / 1e6);
      cg_comm.set(profile.name, static_cast<std::size_t>(nodes),
                  cg_result.comm_time / 1e6);

      simnet::MiniAmrParams amr;
      amr.timesteps = amr_steps;
      const simnet::AppResult amr_result = simnet::run_miniamr(cluster, amr);
      amr_total.set(profile.name, static_cast<std::size_t>(nodes),
                    amr_result.total_time / 1e6);
      amr_comm.set(profile.name, static_cast<std::size_t>(nodes),
                   amr_result.comm_time / 1e6);
      std::printf("  %-28s %2d nodes: CG comm %4.1f%%  miniAMR comm %4.1f%%\n",
                  profile.name.c_str(), nodes,
                  100 * cg_result.comm_fraction(),
                  100 * amr_result.comm_fraction());
    }
  }

  for (const auto* table : {&cg_total, &cg_comm, &amr_total, &amr_comm}) {
    table->print(std::cout);
    if (csv) {
      table->print_csv(std::cout);
    }
  }

  // Headline comparisons (averaged over node counts).
  const auto average_gain = [&](const osu::FigureTable& table,
                                const std::string& base) {
    double sum = 0;
    int count = 0;
    for (const std::size_t nodes : table.rows()) {
      sum += 1.0 - table.at("CXL SHM", nodes) / table.at(base, nodes);
      ++count;
    }
    return 100.0 * sum / count;
  };
  std::printf("\n  CG comm time: CXL lower than TCP/CX-6 Dx by %.1f%% "
              "(paper: 25.3%%), than TCP/Ethernet by %.1f%% (paper: 37.6%%)\n",
              average_gain(cg_comm, "TCP over Mellanox CX-6 Dx"),
              average_gain(cg_comm, "TCP over Ethernet"));
  std::printf("  miniAMR total: CXL faster than TCP/CX-6 Dx by %.1f%% "
              "(paper: 4%%), than TCP/Ethernet by %.1f%% (paper: 4.7%%)\n",
              average_gain(amr_total, "TCP over Mellanox CX-6 Dx"),
              average_gain(amr_total, "TCP over Ethernet"));
  return 0;
}
