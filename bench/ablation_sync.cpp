// Ablation: one-sided synchronization over CXL SHM flags (§3.4) vs over
// network messages.
//
// PSCW traditionally sends epoch-status messages over the network; cMPI
// replaces them with shared flag arrays in CXL SHM, eliminating the
// round trips (and, over TCP, the target-progress delays). This bench
// measures the per-epoch cost of an empty PSCW epoch (no data) under
// both designs, plus Lock/Unlock.
#include <array>
#include <cstdio>
#include <iostream>

#include "common/cli.hpp"
#include "core/cmpi.hpp"
#include "fabric/net_fabric.hpp"
#include "osu/report.hpp"

namespace {

using namespace cmpi;

/// Per-epoch cost of start/complete + post/wait over CXL SHM flags.
double cxl_pscw_epoch_us(int iters) {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  runtime::Universe universe(cfg);
  double result = 0;
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    rma::Window win = mpi.create_window("sync_ablation", 64);
    const std::array<int, 1> peer{1 - ctx.rank()};
    win.fence();
    const double start = ctx.clock().now();
    for (int i = 0; i < iters; ++i) {
      if (ctx.rank() == 0) {
        win.start(peer);
        win.complete(peer);
      } else {
        win.post(peer);
        win.wait(peer);
      }
    }
    win.fence();
    if (ctx.rank() == 0) {
      result = (ctx.clock().now() - start) / iters / 1e3;
    }
    win.free();
  });
  return result;
}

/// Per-epoch cost of CXL Lock/Unlock (bakery lock in CXL SHM).
double cxl_lock_epoch_us(int iters) {
  runtime::UniverseConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.pool_size = 64_MiB;
  cfg.arena_params.levels = 4;
  cfg.arena_params.level1_buckets = 61;
  runtime::Universe universe(cfg);
  double result = 0;
  universe.run([&](runtime::RankCtx& ctx) {
    Session mpi(ctx);
    rma::Window win = mpi.create_window("lock_ablation", 64);
    win.fence();
    const double start = ctx.clock().now();
    if (ctx.rank() == 0) {
      for (int i = 0; i < iters; ++i) {
        win.lock(1);
        win.unlock(1);
      }
      result = (ctx.clock().now() - start) / iters / 1e3;
    }
    win.fence();
    win.free();
  });
  return result;
}

/// Per-epoch cost of PSCW emulated with network messages.
double net_pscw_epoch_us(const fabric::NicProfile& profile, int iters) {
  fabric::NetConfig cfg;
  cfg.nodes = 2;
  cfg.ranks_per_node = 1;
  cfg.profile = profile;
  fabric::NetUniverse universe(cfg);
  double result = 0;
  universe.run([&](fabric::NetCtx& ctx) {
    fabric::NetWindow win(ctx, "sync_ablation", 64);
    const std::array<int, 1> peer{1 - ctx.rank()};
    win.fence();
    const double start = ctx.clock().now();
    for (int i = 0; i < iters; ++i) {
      if (ctx.rank() == 0) {
        win.start(peer);
        win.complete(peer);
      } else {
        win.post(peer);
        win.wait(peer);
      }
    }
    win.fence();
    if (ctx.rank() == 0) {
      result = (ctx.clock().now() - start) / iters / 1e3;
    }
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const int iters = static_cast<int>(args.get_int("iters", 50));
  const bool csv = args.get_bool("csv");

  osu::FigureTable table(
      "Ablation: one-sided synchronization, CXL SHM flags vs network",
      "Variant", "us/epoch");
  table.set("PSCW", 1, cxl_pscw_epoch_us(iters));
  table.set("Lock/Unlock", 1, cxl_lock_epoch_us(iters));
  const double eth = net_pscw_epoch_us(fabric::tcp_ethernet(), iters);
  const double mlx = net_pscw_epoch_us(fabric::tcp_cx6dx(), iters);
  table.set("PSCW over TCP/Ethernet", 1, eth);
  table.set("PSCW over TCP/CX-6 Dx", 1, mlx);
  table.print(std::cout);
  if (csv) {
    table.print_csv(std::cout);
  }
  std::printf("\n  CXL-resident flags eliminate the network round trips and"
              " the target-progress delay of emulated RMA sync\n");
  return 0;
}
