// Figure 9: bandwidth of two-sided communication with various message-cell
// sizes (§4.3). Cell size bounds the eager chunk: larger cells let larger
// messages travel without splitting and raise peak bandwidth, saturating
// around 64 KiB.
//
// Paper shape targets (32 procs): 16 KiB cells peak ~3.6 GB/s, 32 KiB
// ~3.9 GB/s, 64 KiB ~6 GB/s, and 128 KiB adds nothing beyond 64 KiB.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace cmpi;
  bench::FigureOptions opts = bench::parse_options(argc, argv);
  // Fig. 9 is a single-process-count study (the paper plots 32 procs; we
  // default to the largest requested count).
  const int procs = opts.procs.back();

  osu::FigureTable table(
      "Figure 9: two-sided bandwidth vs message-cell size (" +
          std::to_string(procs) + " procs)",
      "Size", "MB/s");
  for (const std::size_t cell : {16u * 1024, 32u * 1024, 64u * 1024,
                                 128u * 1024}) {
    osu::SweepParams params = bench::sweep_params(opts, procs);
    params.cell_payload = cell;
    // The figure studies the eager chunking mechanism, so the sweep pins
    // the rendezvous path off: with it on, every message above one cell
    // bypasses chunking and the four series collapse onto one curve (the
    // adaptive series below shows exactly that).
    params.rendezvous_threshold = ~std::size_t{0};
    const auto values = osu::cxl_twosided_bw_mbps(params);
    const std::string series = format_size(cell) + " cells";
    double peak = 0;
    for (std::size_t i = 0; i < params.sizes.size(); ++i) {
      table.set(series, params.sizes[i], values[i]);
      peak = std::max(peak, values[i]);
    }
    std::printf("  peak with %s cells: %.0f MB/s\n",
                format_size(cell).c_str(), peak);
  }
  {
    // The adaptive protocol with the smallest cell: rendezvous makes the
    // cell size irrelevant above the threshold, which is the point of the
    // large-message fast path.
    osu::SweepParams params = bench::sweep_params(opts, procs);
    params.cell_payload = 16u * 1024;
    const auto values = osu::cxl_twosided_bw_mbps(params);
    for (std::size_t i = 0; i < params.sizes.size(); ++i) {
      table.set("16 KiB cells + rdvz", params.sizes[i], values[i]);
    }
  }
  bench::finish(table, opts);
  bench::write_json(table, opts);

  // The splitting mechanism is most visible in latency: beyond the cell
  // size a message travels as sequential chunks and latency turns linear
  // at the cell boundary (§4.2's "limited cell size" discussion).
  osu::FigureTable latency(
      "Figure 9 (companion): two-sided latency vs message-cell size (2 "
      "procs)",
      "Size", "us");
  for (const std::size_t cell : {16u * 1024, 32u * 1024, 64u * 1024,
                                 128u * 1024}) {
    osu::SweepParams params = bench::sweep_params(opts, 2);
    params.cell_payload = cell;
    params.rendezvous_threshold = ~std::size_t{0};  // study the eager path
    params.sizes.clear();
    for (std::size_t s = 4u * 1024; s <= 512u * 1024; s *= 2) {
      params.sizes.push_back(s);
    }
    const auto values = osu::cxl_twosided_latency_us(params);
    for (std::size_t i = 0; i < params.sizes.size(); ++i) {
      latency.set(format_size(cell) + " cells", params.sizes[i], values[i]);
    }
  }
  bench::finish(latency, opts);
  return 0;
}
