// Figure 7: bandwidth of two-sided MPI communication (multi-pair
// streaming send/recv through the SPSC ring matrix, 64 KiB cells).
//
// Paper shape targets: CXL SHM saturates ~6.05 GB/s (about 30% below its
// one-sided peak — every byte crosses the device twice); TCP/Ethernet
// converges to ~120 MB/s; TCP/CX-6 Dx keeps scaling with process count to
// >10 GB/s for large messages (up to ~2.1x over CXL at >4 procs); CXL up
// to ~48.2x over Ethernet.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace cmpi;
  const bench::FigureOptions opts = bench::parse_options(argc, argv);
  osu::FigureTable table(
      "Figure 7: bandwidth of two-sided MPI communication", "Size", "MB/s");
  bench::run_standard_sweep(opts, table, osu::cxl_twosided_bw_mbps,
                            osu::net_twosided_bw_mbps);
  // Protocol ablation: the same sweep with the large-message rendezvous
  // path disabled, so the adaptive CXL series can be read against the
  // eager-only (chunked, two-copy) baseline it replaced.
  if (!opts.eager_only) {
    for (const int procs : opts.procs) {
      osu::SweepParams params = bench::sweep_params(opts, procs);
      params.rendezvous_threshold = ~std::size_t{0};
      const auto values = osu::cxl_twosided_bw_mbps(params);
      const std::string series =
          "CXL eager-only (" + std::to_string(procs) + "p)";
      for (std::size_t i = 0; i < params.sizes.size(); ++i) {
        table.set(series, params.sizes[i], values[i]);
      }
    }
  }
  bench::finish(table, opts);
  bench::print_headline_ratios(table, opts, /*higher_is_better=*/true);
  if (!opts.eager_only) {
    // Below the threshold both series run the identical eager path, so
    // restrict the comparison to the sizes the rendezvous path actually
    // handles (otherwise sub-threshold jitter pollutes the headline).
    const std::size_t threshold = opts.rendezvous_threshold == 0
                                      ? opts.cell_payload
                                      : opts.rendezvous_threshold;
    for (const int procs : opts.procs) {
      const std::string suffix = " (" + std::to_string(procs) + "p)";
      double ratio = 0;
      for (const std::size_t size : table.rows()) {
        if (size <= threshold) {
          continue;
        }
        const double eager = table.at("CXL eager-only" + suffix, size);
        if (eager > 0) {
          ratio = std::max(ratio, table.at("CXL SHM" + suffix, size) / eager);
        }
      }
      std::printf(
          "  adaptive vs eager-only%s      up to %.2fx (sizes > %s)\n",
          suffix.c_str(), ratio, format_size(threshold).c_str());
    }
  }
  bench::write_json(table, opts);
  return 0;
}
