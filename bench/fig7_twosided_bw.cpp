// Figure 7: bandwidth of two-sided MPI communication (multi-pair
// streaming send/recv through the SPSC ring matrix, 64 KiB cells).
//
// Paper shape targets: CXL SHM saturates ~6.05 GB/s (about 30% below its
// one-sided peak — every byte crosses the device twice); TCP/Ethernet
// converges to ~120 MB/s; TCP/CX-6 Dx keeps scaling with process count to
// >10 GB/s for large messages (up to ~2.1x over CXL at >4 procs); CXL up
// to ~48.2x over Ethernet.
#include "figure_common.hpp"

int main(int argc, char** argv) {
  using namespace cmpi;
  const bench::FigureOptions opts = bench::parse_options(argc, argv);
  osu::FigureTable table(
      "Figure 7: bandwidth of two-sided MPI communication", "Size", "MB/s");
  bench::run_standard_sweep(opts, table, osu::cxl_twosided_bw_mbps,
                            osu::net_twosided_bw_mbps);
  bench::finish(table, opts);
  bench::print_headline_ratios(table, opts, /*higher_is_better=*/true);
  return 0;
}
