// Figure 11: memset latency with uncacheable memory vs cacheable memory
// plus cache-flushing (§4.5), data sizes 64 B - 128 KiB.
//
// Paper shape targets: below 64 B all flush variants cost ~2-3 us (one
// line, one flush); beyond 64 B clflushopt beats clflush by up to 4x
// (parallel flushing); uncacheable accesses spike past 4096 us once the
// size exceeds the PCIe MPS write-combining regime (~2 KiB), reaching
// ~256x the flushed latency.
#include <iostream>

#include "common/cli.hpp"
#include "common/units.hpp"
#include "cxlsim/accessor.hpp"
#include "osu/report.hpp"

namespace {

using namespace cmpi;

enum class Mode { kUncachable, kClflush, kClflushopt };

double memset_latency_us(Mode mode, std::size_t size, int iters) {
  auto device = check_ok(cxlsim::DaxDevice::create(16_MiB));
  constexpr std::uint64_t kRegion = 2_MiB;
  if (mode == Mode::kUncachable) {
    check_ok(device->set_cacheability(kRegion, 4_MiB,
                                      cxlsim::Cacheability::kUncachable));
  }
  cxlsim::CacheSim cache(*device);
  simtime::VClock clock;
  cxlsim::Accessor acc(*device, cache, clock);
  const double start = clock.now();
  for (int i = 0; i < iters; ++i) {
    acc.memset(kRegion, std::byte{0xAB}, size);
    switch (mode) {
      case Mode::kUncachable:
        break;  // UC accesses bypass the cache entirely
      case Mode::kClflush:
        acc.clflush(kRegion, size);
        acc.sfence();
        break;
      case Mode::kClflushopt:
        acc.clflushopt(kRegion, size);
        acc.sfence();
        break;
    }
  }
  return (clock.now() - start) / iters / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = check_ok(CliArgs::parse(argc, argv));
  const int iters = static_cast<int>(args.get_int("iters", 50));
  const bool csv = args.get_bool("csv");

  osu::FigureTable table(
      "Figure 11: memset latency, uncacheable vs cacheable + flushing",
      "Size", "us");
  for (std::size_t size = 64; size <= 128_KiB; size *= 2) {
    table.set("uncacheable", size,
              memset_latency_us(Mode::kUncachable, size, iters));
    table.set("clflush", size, memset_latency_us(Mode::kClflush, size,
                                                 iters));
    table.set("clflushopt", size,
              memset_latency_us(Mode::kClflushopt, size, iters));
  }
  table.print(std::cout);
  if (csv) {
    table.print_csv(std::cout);
  }

  std::printf("\n  clflush/clflushopt at 128K: %.1fx (paper: up to 4x)\n",
              table.at("clflush", 128_KiB) / table.at("clflushopt", 128_KiB));
  std::printf("  uncacheable/clflushopt at 128K: %.0fx (paper: ~256x)\n",
              table.at("uncacheable", 128_KiB) /
                  table.at("clflushopt", 128_KiB));
  std::printf("  uncacheable first exceeds 4096 us at: ");
  for (std::size_t size = 64; size <= 128_KiB; size *= 2) {
    if (table.at("uncacheable", size) >= 4096.0) {
      std::printf("%s (paper: just beyond 2K)\n", format_size(size).c_str());
      break;
    }
  }
  return 0;
}
